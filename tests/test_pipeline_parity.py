"""Parity suite: every execution mode must produce identical results.

The performance layer (content-addressed cache, slim worker protocol,
incremental pairing index) must be invisible in the output: serial,
parallel, cached-warm, and incremental runs all yield the same sites,
pairings, findings, and patches on the same source tree.
"""

import pytest

from repro.core.engine import AnalysisOptions, OFenceEngine
from repro.corpus import CorpusSpec, generate_corpus


def signature(result):
    """Everything observable about an :class:`AnalysisResult`."""
    return {
        "files_with_barriers": result.files_with_barriers,
        "files_analyzed": result.files_analyzed,
        "files_skipped": result.files_skipped_by_config,
        "files_failed": result.files_failed,
        "sites": [site.barrier_id for site in result.sites],
        "pairings": [p.describe() for p in result.pairing.pairings],
        "implicit_ipc": [s.barrier_id for s in result.pairing.implicit_ipc],
        "unpaired": [s.barrier_id for s in result.pairing.unpaired],
        "findings": [f.describe() for f in result.report.all_findings],
        "patches": [(p.filename, p.applied, p.render())
                    for p in result.patches],
    }


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec.small(), seed=77)


@pytest.fixture(scope="module")
def serial_signature(corpus):
    return signature(OFenceEngine(corpus.source).analyze())


class TestModeParity:
    def test_parallel_matches_serial(self, corpus, serial_signature):
        parallel = OFenceEngine(
            corpus.source, AnalysisOptions(workers=2)
        ).analyze()
        assert signature(parallel) == serial_signature

    def test_disk_cache_warm_matches_serial(
        self, corpus, serial_signature, tmp_path
    ):
        options = AnalysisOptions(cache_dir=tmp_path / "cache")
        cold = OFenceEngine(corpus.source, options).analyze()
        assert signature(cold) == serial_signature
        # A fresh engine over the same tree: everything loads from disk.
        warm_engine = OFenceEngine(corpus.source, options)
        warm = warm_engine.analyze()
        assert signature(warm) == serial_signature
        counters = warm.profile.counters
        assert counters.get("scan.scanned", 0) == 0
        assert counters["scan.disk_hits"] == warm.files_analyzed

    def test_memory_warm_matches_serial(self, corpus, serial_signature):
        engine = OFenceEngine(corpus.source)
        engine.analyze()
        warm = engine.analyze()
        assert signature(warm) == serial_signature
        counters = warm.profile.counters
        assert counters["scan.memory_hits"] == warm.files_analyzed
        assert counters.get("scan.scanned", 0) == 0
        # The pairing index was reused wholesale: no file deltas, and
        # every writer's candidate came from the memo.
        assert counters.get("pair.files_updated", 0) == 0
        assert counters.get("pair.candidates_computed", 0) == 0

    def test_incremental_noop_matches_serial(self, corpus, serial_signature):
        engine = OFenceEngine(corpus.source)
        engine.analyze()
        path = corpus.source.files_with_barriers()[0]
        again = engine.reanalyze_file(path)
        assert signature(again) == serial_signature

    def test_incremental_edit_matches_fresh_analysis(self, corpus):
        from repro.core.engine import KernelSource

        def copy_source():
            return KernelSource(
                files=dict(corpus.source.files),
                headers=dict(corpus.source.headers),
                file_options=dict(corpus.source.file_options),
            )

        path = corpus.source.files_with_barriers()[0]
        edited = corpus.source.files[path] + "\n/* trailing comment */\n"

        incremental_engine = OFenceEngine(copy_source())
        incremental_engine.analyze()
        incremental = incremental_engine.reanalyze_file(path, edited)

        fresh_source = copy_source()
        fresh_source.files[path] = edited
        fresh = OFenceEngine(fresh_source).analyze()
        assert signature(incremental) == signature(fresh)

    def test_parallel_then_incremental_matches_serial(
        self, corpus, serial_signature
    ):
        engine = OFenceEngine(corpus.source, AnalysisOptions(workers=2))
        engine.analyze()
        path = corpus.source.files_with_barriers()[-1]
        again = engine.reanalyze_file(path)
        assert signature(again) == serial_signature
