"""Serve/cluster integration tests for the findings store.

Contract tests for the /v1/runs, /v1/findings, and triage endpoints,
the ``ofence_store_*`` metrics in both JSON and Prometheus output, and
the cross-tier determinism guarantee: `repro diff` between two recorded
runs is bit-for-bit identical whether the runs were recorded via the
CLI path, the serve daemon, or a 2-node cluster coordinator.
"""

import json

import pytest

from repro.core.engine import KernelSource, OFenceEngine
from repro.serve import AnalysisServer, ClientError, ServeClient
from repro.store import FindingsStore

from tests.cluster_harness import ClusterHarness

WRITER = (
    "struct s { int flag; int data; };\n"
    "void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }\n"
)
READER = (
    "struct s { int flag; int data; };\n"
    "void r(struct s *p) {\n"
    "\tif (!p->flag) return;\n"
    "\tsmp_rmb();\n"
    "\tg(p->data);\n"
    "}\n"
)
BUGGY_READER = READER.replace(
    "\tif (!p->flag) return;\n\tsmp_rmb();",
    "\tsmp_rmb();\n\tif (!p->flag) return;",
)


def tree_a() -> KernelSource:
    return KernelSource(files={"w.c": WRITER, "r.c": READER})


def tree_b() -> KernelSource:
    return KernelSource(files={"w.c": WRITER, "r.c": BUGGY_READER})


@pytest.fixture
def server(tmp_path):
    with AnalysisServer(store_dir=str(tmp_path / "store")) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServeClient(server.url)


class TestServeEndpoints:
    def test_analyze_auto_persists_run(self, client):
        out = client.analyze(tree_a())
        assert out["status"] == "done"
        assert out["result"]["fingerprints"]
        runs = client.runs()["runs"]
        assert len(runs) == 1
        assert runs[0]["source"] == "serve:analyze"
        assert runs[0]["finding_count"] == \
            len(out["result"]["fingerprints"])
        assert runs[0]["tree_hash"] == out["tree_key"]

    def test_reanalyze_auto_persists_run(self, client):
        first = client.analyze(tree_a())
        client.reanalyze(first["tree_key"],
                         [("r.c", BUGGY_READER)])
        runs = client.runs()["runs"]
        assert [run["source"] for run in runs] == \
            ["serve:analyze", "serve:reanalyze"]
        diff = client.run_diff(runs[0]["id"], runs[1]["id"])
        assert diff["counts"]["new"] >= 1

    def test_runs_limit_and_single_run(self, client):
        client.analyze(tree_a())
        client.analyze(tree_b())
        assert len(client.runs(limit=1)["runs"]) == 1
        run = client.run(2)
        assert run["id"] == 2
        with pytest.raises(ClientError) as err:
            client.run(42)
        assert err.value.status == 404

    def test_post_runs_records_prebuilt_records(self, client):
        out = client.record_run({
            "tree_hash": "abc", "source": "script",
            "records": [{
                "fingerprint": "feedc0de00000000",
                "kind": "missing-barrier", "file": "x.c",
                "function": "g", "line": 4, "explanation": "planted",
            }],
        })
        assert out["new_fingerprints"] == ["feedc0de00000000"]
        assert out["run"]["source"] == "script"
        findings = client.findings()["findings"]
        assert findings[0]["fingerprint"] == "feedc0de00000000"

    def test_post_runs_validates_payload(self, client):
        with pytest.raises(ClientError) as err:
            client.record_run({"tree_hash": "abc"})
        assert err.value.status == 400
        with pytest.raises(ClientError) as err:
            client.record_run({"records": [{"kind": "x"}]})
        assert err.value.status == 400

    def test_findings_filters_and_triage_flow(self, client):
        client.analyze(tree_a())
        findings = client.findings()["findings"]
        assert findings and all(f["state"] == "open" for f in findings)
        fp = findings[0]["fingerprint"]

        updated = client.triage(fp, "false-positive", note="noise")
        assert updated["state"] == "false-positive"
        assert updated["note"] == "noise"

        by_state = client.findings(state="false-positive")["findings"]
        assert [f["fingerprint"] for f in by_state] == [fp]
        suppressed = client.findings(suppress=True)["findings"]
        assert fp not in [f["fingerprint"] for f in suppressed]
        assert len(suppressed) == len(findings) - 1
        by_checker = client.findings(
            checker=findings[0]["kind"]
        )["findings"]
        assert fp in [f["fingerprint"] for f in by_checker]

    def test_triage_error_mapping(self, client):
        client.analyze(tree_a())
        fp = client.findings()["findings"][0]["fingerprint"]
        with pytest.raises(ClientError) as err:
            client.triage(fp, "bogus")
        assert err.value.status == 400
        with pytest.raises(ClientError) as err:
            client.triage("0000000000000000", "confirmed")
        assert err.value.status == 404
        with pytest.raises(ClientError) as err:
            client.triage(fp, "")
        assert err.value.status == 400

    def test_invalid_state_filter_is_400(self, client):
        client.analyze(tree_a())
        with pytest.raises(ClientError) as err:
            client.findings(state="bogus")
        assert err.value.status == 400

    def test_diff_endpoint_errors(self, client):
        client.analyze(tree_a())
        with pytest.raises(ClientError) as err:
            client.run_diff(1, 5)
        assert err.value.status == 404
        with pytest.raises(ClientError) as err:
            client._request("GET", "/v1/runs/not-a-number")
        assert err.value.status == 400

    def test_store_metrics_json_and_prometheus(self, client):
        client.analyze(tree_a())
        client.analyze(tree_a())
        fp = client.findings()["findings"][0]["fingerprint"]
        client.triage(fp, "confirmed")

        snapshot = client.metrics()
        store = snapshot["store"]
        assert store["runs"] == 2
        assert store["findings_confirmed"] == 1
        assert store["dedup_hits"] > 0
        assert store["dedup_hit_rate"] == pytest.approx(0.5)

        text = client.metrics_text()
        lines = {
            line.split(" ")[0]: line.split(" ")[1]
            for line in text.splitlines()
            if line.startswith("ofence_store_")
        }
        assert lines["ofence_store_runs"] == "2"
        assert lines["ofence_store_findings_confirmed"] == "1"
        assert "ofence_store_dedup_hit_rate" in lines

    def test_no_store_configured_is_404(self):
        with AnalysisServer() as bare:
            client = ServeClient(bare.url)
            for call in (
                lambda: client.runs(),
                lambda: client.findings(),
                lambda: client.run_diff(1, 2),
                lambda: client.triage("aa", "confirmed"),
            ):
                with pytest.raises(ClientError) as err:
                    call()
                assert err.value.status == 404
            assert "store" not in client.metrics()


class TestCrossTierDeterminism:
    def test_cli_serve_cluster_diffs_are_bit_identical(self, tmp_path):
        """The same two revisions recorded through three tiers must
        produce byte-identical ``repro diff`` output."""
        diffs: list[str] = []

        # CLI tier: direct engine + FindingsStore.record_run.
        with FindingsStore(tmp_path / "cli") as store:
            store.record_run(
                OFenceEngine(tree_a()).analyze(), tree_hash="rev-a",
                source="cli",
            )
            store.record_run(
                OFenceEngine(tree_b()).analyze(), tree_hash="rev-b",
                source="cli",
            )
            diffs.append(store.diff(1, 2).to_json())

        # Serve tier: submissions over HTTP, auto-persisted.
        with AnalysisServer(store_dir=str(tmp_path / "serve")) as srv:
            client = ServeClient(srv.url)
            client.analyze(tree_a())
            client.analyze(tree_b())
            diffs.append(
                json.dumps(client.run_diff(1, 2), sort_keys=True,
                           indent=2) + "\n"
            )

        # Cluster tier: a 2-node coordinator daemon with a store.
        with ClusterHarness(nodes=2) as harness:
            coordinator_server = harness.coordinator.make_server(
                store_dir=str(tmp_path / "cluster")
            )
            with coordinator_server:
                client = ServeClient(coordinator_server.url)
                client.analyze(tree_a())
                client.analyze(tree_b())
                diffs.append(
                    json.dumps(client.run_diff(1, 2), sort_keys=True,
                               indent=2) + "\n"
                )

        assert diffs[0] == diffs[1] == diffs[2]
        payload = json.loads(diffs[0])
        assert payload["counts"]["new"] >= 1

    def test_concurrent_serve_workers_share_one_store(self, tmp_path):
        """Two job workers recording into the same store directory must
        not corrupt it (single-writer transaction per run)."""
        with AnalysisServer(
            store_dir=str(tmp_path / "store"), workers=2
        ) as srv:
            client = ServeClient(srv.url)
            pending = []
            for i in range(6):
                # Distinct trees so every submission is a separate job.
                files = {
                    "w.c": WRITER,
                    "r.c": READER.replace("void r(", f"void r{i}("),
                }
                pending.append(client.analyze(
                    KernelSource(files=files), wait=False
                )["job_id"])
            for job_id in pending:
                out = client.job(job_id, wait=True, timeout=120)
                assert out["status"] == "done", out
            runs = client.runs()["runs"]
            assert len(runs) == 6
            counts = [run["finding_count"] for run in runs]
            assert all(count == counts[0] for count in counts)
