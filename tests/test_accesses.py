"""Unit tests for memory-access extraction and classification."""

from repro.analysis.accesses import AccessExtractor, AccessKind, ObjectKey
from repro.cparse.parser import parse_source
from repro.cparse.typesys import UNKNOWN_STRUCT, TypeRegistry


def extract(stmt_src, struct_def="struct s { int a; int b; int flags; };",
            params="struct s *p, struct s *q"):
    src = f"{struct_def}\nvoid f({params}) {{ {stmt_src} }}"
    unit = parse_source(src, "test.c")
    registry = TypeRegistry()
    registry.add_unit(unit)
    extractor = AccessExtractor(registry)
    fn = unit.function("f")
    extractor.declare_params(fn)
    out = []
    for stmt in fn.body.stmts:
        if getattr(stmt, "cond", None) is not None:
            out.extend(extractor.extract(stmt.cond))
        elif hasattr(stmt, "expr") and stmt.expr is not None:
            out.extend(extractor.extract(stmt.expr))
        elif hasattr(stmt, "declarators"):
            extractor.declare_locals(stmt)
            for d in stmt.declarators:
                if d.init is not None:
                    out.extend(extractor.extract(d.init))
    return out


def single(stmt_src, **kwargs):
    accesses = extract(stmt_src, **kwargs)
    assert len(accesses) == 1, accesses
    return accesses[0]


class TestClassification:
    def test_plain_read(self):
        access = single("g(p->a);")
        assert access.kind is AccessKind.READ
        assert access.key == ObjectKey("s", "a")

    def test_plain_write(self):
        access = single("p->a = 1;")
        assert access.kind is AccessKind.WRITE

    def test_compound_assignment_reads_and_writes(self):
        access = single("p->a += 2;")
        assert access.kind is AccessKind.READ_WRITE

    def test_increment_reads_and_writes(self):
        access = single("p->a++;")
        assert access.kind is AccessKind.READ_WRITE

    def test_prefix_decrement(self):
        access = single("--p->a;")
        assert access.kind is AccessKind.READ_WRITE

    def test_rhs_of_assignment_is_read(self):
        accesses = extract("p->a = q->b;")
        kinds = {a.key.field: a.kind for a in accesses}
        assert kinds["a"] is AccessKind.WRITE
        assert kinds["b"] is AccessKind.READ

    def test_condition_is_read(self):
        access = single("if (p->flags) g();")
        assert access.kind is AccessKind.READ

    def test_read_in_call_argument(self):
        access = single("consume(p->a);")
        assert access.kind is AccessKind.READ

    def test_address_of_member_is_not_an_access(self):
        assert extract("g(&p->a);") == []

    def test_nested_member_reads_path(self):
        src = """
        struct in { int leaf; };
        struct out { struct in *in; };
        void f(struct out *o) { o->in->leaf = 1; }
        """
        unit = parse_source(src, "t.c")
        registry = TypeRegistry()
        registry.add_unit(unit)
        extractor = AccessExtractor(registry)
        fn = unit.function("f")
        extractor.declare_params(fn)
        accesses = extractor.extract(fn.body.stmts[0].expr)
        by_field = {a.key.field: a for a in accesses}
        assert by_field["leaf"].kind is AccessKind.WRITE
        assert by_field["leaf"].key.struct == "in"
        assert by_field["in"].kind is AccessKind.READ
        assert by_field["in"].key.struct == "out"


class TestAnnotations:
    def test_read_once(self):
        access = single("x = READ_ONCE(p->a);",
                        params="struct s *p, int x")
        assert access.via == "READ_ONCE"
        assert access.kind is AccessKind.READ
        assert access.annotated

    def test_write_once(self):
        access = single("WRITE_ONCE(p->a, 5);")
        assert access.via == "WRITE_ONCE"
        assert access.kind is AccessKind.WRITE

    def test_rcu_dereference_counts_as_annotated_read(self):
        access = single("x = rcu_dereference(p->a);",
                        params="struct s *p, int x")
        assert access.kind is AccessKind.READ

    def test_plain_access_not_annotated(self):
        access = single("g(p->a);")
        assert not access.annotated


class TestBarrierPrimitiveAccesses:
    def test_store_release_writes_target(self):
        access = single("smp_store_release(&p->flags, 1);")
        assert access.kind is AccessKind.WRITE
        assert access.via == "smp_store_release"

    def test_load_acquire_reads_target(self):
        access = single("x = smp_load_acquire(&p->flags);",
                        params="struct s *p, int x")
        assert access.kind is AccessKind.READ
        assert access.via == "smp_load_acquire"

    def test_store_mb_writes_target(self):
        access = single("smp_store_mb(p->flags, 1);")
        assert access.kind is AccessKind.WRITE

    def test_plain_barrier_has_no_access(self):
        assert extract("smp_wmb();") == []


class TestAtomicHelpers:
    def test_atomic_inc_reads_and_writes(self):
        access = single("atomic_inc(&p->a);")
        assert access.kind is AccessKind.READ_WRITE
        assert access.via == "atomic_inc"

    def test_atomic_set_writes(self):
        access = single("atomic_set(&p->a, 1);")
        assert access.kind is AccessKind.WRITE

    def test_atomic_read_reads(self):
        access = single("x = atomic_read(&p->a);",
                        params="struct s *p, int x")
        assert access.kind is AccessKind.READ

    def test_set_bit_reads_and_writes(self):
        accesses = extract("set_bit(0, &p->flags);")
        (access,) = [a for a in accesses if a.key.field == "flags"]
        assert access.kind is AccessKind.READ_WRITE

    def test_unknown_call_args_are_reads(self):
        access = single("mystery_fn(p->a);")
        assert access.kind is AccessKind.READ


class TestObjectKeys:
    def test_unknown_struct_key(self):
        access = single("g(x->whatever);", params="void *x")
        assert access.key.struct == UNKNOWN_STRUCT
        assert not access.key.is_resolved

    def test_resolved_key_string(self):
        access = single("g(p->a);")
        assert str(access.key) == "(struct s, a)"

    def test_same_field_different_structs_distinct(self):
        src = """
        struct a { int shared; };
        struct b { int shared; };
        void f(struct a *x, struct b *y) { g(x->shared); g(y->shared); }
        """
        unit = parse_source(src, "t.c")
        registry = TypeRegistry()
        registry.add_unit(unit)
        extractor = AccessExtractor(registry)
        fn = unit.function("f")
        extractor.declare_params(fn)
        keys = set()
        for stmt in fn.body.stmts:
            for access in extractor.extract(stmt.expr):
                keys.add(access.key)
        assert keys == {ObjectKey("a", "shared"), ObjectKey("b", "shared")}

    def test_aliased_variables_same_key(self, listing1):
        # reader uses 'a', writer uses 'b': same (struct, field) key.
        unit = parse_source(listing1, "t.c")
        registry = TypeRegistry()
        registry.add_unit(unit)
        keys_per_fn = []
        for name in ("reader", "writer"):
            fn = unit.function(name)
            extractor = AccessExtractor(registry)
            extractor.declare_params(fn)
            keys = set()
            for stmt in fn.body.stmts:
                expr = getattr(stmt, "expr", None) or getattr(stmt, "cond", None)
                if expr is not None:
                    keys.update(a.key for a in extractor.extract(expr))
            keys_per_fn.append(keys)
        assert ObjectKey("my_struct", "init") in keys_per_fn[0]
        assert ObjectKey("my_struct", "init") in keys_per_fn[1]


class TestEvaluationOrderAndEdgeCases:
    def test_ternary_both_branches_extracted(self):
        accesses = extract("x = c ? p->a : p->b;",
                           params="struct s *p, int x, int c")
        fields = {a.key.field for a in accesses}
        assert fields == {"a", "b"}

    def test_index_expression_extracted(self):
        accesses = extract("g(arr[p->a]);", params="struct s *p, int *arr")
        assert accesses[0].key.field == "a"

    def test_comma_expression(self):
        accesses = extract("p->a = 1, p->b = 2;")
        assert {a.key.field for a in accesses} == {"a", "b"}

    def test_cast_preserves_access(self):
        access = single("x = (long)p->a;", params="struct s *p, long x")
        assert access.kind is AccessKind.READ

    def test_init_list_reads(self):
        accesses = extract("int v[2] = { p->a, p->b };")
        assert {a.key.field for a in accesses} == {"a", "b"}
