"""Edge-case coverage for the §5 checkers."""

import pytest

from repro.checkers.model import DeviationKind
from repro.checkers.unneeded import UnneededBarrierChecker
from repro.kernel.barriers import BarrierKind


def unneeded(analyze, body):
    src = f"struct d {{ int s; }};\nvoid f(struct d *p)\n{{\n{body}\n}}\n"
    report = analyze(src).check()
    return report.unneeded_findings


class TestUnneededSubsumptionMatrix:
    """Which successor subsumes which barrier (§5.1)."""

    @pytest.mark.parametrize("first,second,redundant", [
        ("smp_wmb();", "smp_mb();", True),     # full subsumes write
        ("smp_rmb();", "smp_mb();", True),     # full subsumes read
        ("smp_wmb();", "smp_wmb();", True),    # write subsumes write
        ("smp_rmb();", "smp_rmb();", True),    # read subsumes read
        ("smp_wmb();", "smp_rmb();", False),   # read does NOT subsume write
        ("smp_rmb();", "smp_wmb();", False),   # write does NOT subsume read
        ("smp_mb();", "smp_wmb();", False),    # write does NOT subsume full
        ("smp_mb();", "smp_mb();", True),      # full subsumes full
    ])
    def test_barrier_pairs(self, analyze, first, second, redundant):
        findings = unneeded(analyze, f"\tp->s = 1;\n\t{first}\n\t{second}")
        assert bool(findings) == redundant

    def test_atomic_modifier_never_subsumes(self, analyze):
        findings = unneeded(
            analyze, "\tp->s = 1;\n\tsmp_wmb();\n\tsmp_mb__before_atomic();"
        )
        assert findings == []

    def test_gap_of_one_statement_blocks_redundancy(self, analyze):
        findings = unneeded(
            analyze, "\tp->s = 1;\n\tsmp_wmb();\n\tcpu_relax();\n\tsmp_mb();"
        )
        assert findings == []

    def test_only_first_barrier_reported(self, analyze):
        findings = unneeded(
            analyze, "\tp->s = 1;\n\tsmp_wmb();\n\tsmp_mb();"
        )
        assert len(findings) == 1
        assert findings[0].barrier.primitive == "smp_wmb"

    def test_seqcount_helpers_exempt(self, analyze):
        # A seqcount helper right before a barrier embeds its own by
        # design and is not "unneeded".
        src = """
        struct d { seqcount_t seq; };
        void f(struct d *p) {
            write_seqcount_begin(&p->seq);
            smp_mb();
        }
        """
        report = analyze(src).check()
        helpers = [
            f for f in report.unneeded_findings
            if f.barrier.is_seqcount_helper
        ]
        assert helpers == []


class TestMisplacedBias:
    def test_fix_always_targets_the_reader(self, analyze):
        # Even when the *writer* could equally be rearranged, the patch
        # bias of §5.2 moves the read.
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void r(struct s *p) {
            smp_rmb();
            if (!p->flag) return;
            g(p->data);
        }
        """
        report = analyze(src).check()
        (finding,) = report.ordering_findings
        assert finding.function == "r"
        assert finding.fix_action.value == "move-read"

    def test_closest_offending_read_selected(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void r(struct s *p) {
            smp_rmb();
            g(p->flag);
            h(p->flag);
            g(p->data);
        }
        """
        report = analyze(src).check()
        findings = [
            f for f in report.ordering_findings
            if f.kind is DeviationKind.MISPLACED_ACCESS
        ]
        assert len(findings) == 1
        assert findings[0].use.distance == 1


class TestWrongTypeEdges:
    def test_mixed_uses_not_flagged(self, analyze):
        # A read barrier whose window has both reads and writes of the
        # common objects is not "only ordering writes".
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void w2(struct s *p) {
            g(p->data);
            p->data = 2;
            smp_rmb();
            p->flag = 2;
        }
        int r(struct s *p) {
            if (!p->flag) return 0;
            smp_rmb();
            g(p->data);
            return 1;
        }
        """
        report = analyze(src).check()
        wrong = [
            f for f in report.ordering_findings
            if f.kind is DeviationKind.WRONG_BARRIER_TYPE
        ]
        assert wrong == []

    def test_reader_with_wmb_flagged(self, analyze):
        # The inverse deviation: a write barrier ordering only reads.
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void w2(struct s *p) { p->data = 3; smp_wmb(); p->flag = 3; }
        int r(struct s *p) {
            if (!p->flag) return 0;
            smp_wmb();
            g(p->data);
            return 1;
        }
        """
        report = analyze(src).check()
        wrong = [
            f for f in report.ordering_findings
            if f.kind is DeviationKind.WRONG_BARRIER_TYPE
        ]
        assert len(wrong) == 1
        assert wrong[0].function == "r"
        assert wrong[0].details["replacement"] == "smp_rmb"


class TestSeqcountEdges:
    def test_read_before_opening_barrier_flagged(self, analyze):
        # Payload read before the version pre-check region.
        src = """
        struct cnt { unsigned seq; long bcnt; long pcnt; };
        void wr(struct cnt *s) {
            s->seq++;
            smp_wmb();
            s->bcnt += 1;
            s->pcnt += 1;
            smp_wmb();
            s->seq++;
        }
        long rd(struct cnt *s) {
            unsigned v;
            long b;
            long p;
            prefetch(s->bcnt);
            do {
                v = s->seq;
                smp_rmb();
                b = s->bcnt;
                p = s->pcnt;
                smp_rmb();
            } while (v != s->seq);
            return b + p;
        }
        """
        report = analyze(src).check()
        assert report.ordering_findings  # the escaped pre-read is caught
