"""Unit tests for the §5 deviation checkers."""

from repro.checkers.model import DeviationKind, FixAction


def findings_of(report, kind):
    return [f for f in report.all_findings if f.kind is kind]


class TestMisplacedAccess:
    PATCH1 = """
    struct rqst { int len; int recd; int out; };
    void complete(struct rqst *req) {
        req->len = 10;
        smp_wmb();
        req->recd = 1;
    }
    void decode(struct rqst *req) {
        smp_rmb();
        if (!req->recd)
            return;
        req->out = req->len;
    }
    """

    def test_patch1_detected(self, analyze):
        report = analyze(self.PATCH1).check()
        (finding,) = findings_of(report, DeviationKind.MISPLACED_ACCESS)
        assert finding.function == "decode"
        assert finding.object_key.field == "recd"
        assert finding.fix_action is FixAction.MOVE_READ
        assert finding.details["move_to"] == "before"

    def test_correct_code_produces_no_finding(self, listing1, analyze):
        report = analyze(listing1).check()
        assert report.ordering_findings == []

    def test_fix_is_biased_towards_moving_the_read(self, analyze):
        report = analyze(self.PATCH1).check()
        (finding,) = report.ordering_findings
        # The finding targets the reader function, not the writer.
        assert finding.function == "decode"

    def test_misplaced_read_before_instead_of_after(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void r(struct s *p) {
            g(p->data);
            if (!p->flag) return;
            smp_rmb();
            done();
        }
        """
        report = analyze(src).check()
        (finding,) = findings_of(report, DeviationKind.MISPLACED_ACCESS)
        assert finding.object_key.field == "data"
        assert finding.details["move_to"] == "after"

    def test_explanation_names_shared_object(self, analyze):
        report = analyze(self.PATCH1).check()
        (finding,) = report.ordering_findings
        assert "(struct rqst, recd)" in finding.explanation

    def test_bnx2x_pattern_is_flagged_as_designed(self, analyze):
        # Listing 4: a field written on both sides of the barrier breaks
        # OFence's assumptions; the (incorrect) patch is still produced.
        src = """
        struct bp { unsigned long sp_state; int mode; };
        void sp_event(struct bp *bp) {
            bp->mode = 1;
            set_bit(0, &bp->sp_state);
            smp_wmb();
            clear_bit(1, &bp->sp_state);
        }
        int sp_poll(struct bp *bp) {
            if (!(bp->sp_state & 1))
                return 0;
            smp_rmb();
            consume(bp->mode);
            return 1;
        }
        """
        report = analyze(src).check()
        findings = findings_of(report, DeviationKind.MISPLACED_ACCESS)
        assert len(findings) == 1
        assert findings[0].object_key.field == "sp_state"


class TestRepeatedRead:
    PATCH3 = """
    struct reuse { int socks; int num_socks; };
    void add_sock(struct reuse *r) {
        r->socks = 1;
        smp_wmb();
        r->num_socks++;
    }
    int select_sock(struct reuse *r) {
        int num = r->num_socks;
        if (num == 0)
            return 0;
        smp_rmb();
        consume(r->socks);
        consume(r->num_socks);
        return num;
    }
    """

    PATCH2 = """
    struct ev { int task; int filters; };
    void install(struct ev *e) {
        e->filters = 4;
        smp_wmb();
        e->task = 1;
    }
    void apply(struct ev *e) {
        int task = e->task;
        if (task == 0)
            return;
        get_task_mm(e->task);
        smp_rmb();
        consume(e->filters);
    }
    """

    def test_patch3_cross_barrier_reread(self, analyze):
        report = analyze(self.PATCH3).check()
        (finding,) = findings_of(report, DeviationKind.REPEATED_READ)
        assert finding.object_key.field == "num_socks"
        assert finding.fix_action is FixAction.REUSE_VALUE
        assert finding.details["captured"] == "num"

    def test_patch3_not_double_reported_as_misplaced(self, analyze):
        report = analyze(self.PATCH3).check()
        misplaced = findings_of(report, DeviationKind.MISPLACED_ACCESS)
        assert all(f.object_key.field != "num_socks" for f in misplaced)

    def test_patch2_guarded_reread(self, analyze):
        report = analyze(self.PATCH2).check()
        (finding,) = findings_of(report, DeviationKind.REPEATED_READ)
        assert finding.object_key.field == "task"
        assert finding.details["captured"] == "task"

    def test_reference_points_to_first_read(self, analyze):
        report = analyze(self.PATCH3).check()
        (finding,) = findings_of(report, DeviationKind.REPEATED_READ)
        assert finding.reference_use.stmt_id < finding.use.stmt_id

    def test_single_read_is_fine(self, listing1, analyze):
        report = analyze(listing1).check()
        assert findings_of(report, DeviationKind.REPEATED_READ) == []

    def test_double_read_without_guard_or_barrier_cross_ignored(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
            h(p->data);
        }
        """
        report = analyze(src).check()
        assert findings_of(report, DeviationKind.REPEATED_READ) == []


class TestWrongBarrierType:
    GROUP = """
    struct ring { int slot; int head; };
    void publish(struct ring *r) {
        r->slot = 7;
        smp_wmb();
        r->head = 1;
    }
    void republish(struct ring *r) {
        r->slot = 9;
        smp_rmb();
        r->head = 2;
    }
    int consume_ring(struct ring *r) {
        if (!r->head)
            return 0;
        smp_rmb();
        consume(r->slot);
        return 1;
    }
    """

    def test_read_barrier_ordering_writes_flagged(self, analyze):
        report = analyze(self.GROUP).check()
        (finding,) = findings_of(report, DeviationKind.WRONG_BARRIER_TYPE)
        assert finding.function == "republish"
        assert finding.details["replacement"] == "smp_wmb"

    def test_correct_barrier_types_not_flagged(self, listing1, analyze):
        report = analyze(listing1).check()
        assert findings_of(report, DeviationKind.WRONG_BARRIER_TYPE) == []

    def test_full_barrier_never_wrong_type(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_mb(); p->flag = 1; }
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        report = analyze(src).check()
        assert findings_of(report, DeviationKind.WRONG_BARRIER_TYPE) == []


class TestUnneededBarrier:
    def test_patch4_barrier_before_wakeup(self, analyze):
        src = """
        struct d { int got_token; int task; };
        int wake_fn(struct d *data) {
            data->got_token = 1;
            smp_wmb();
            wake_up_process(data->task);
            return 1;
        }
        """
        report = analyze(src).check()
        (finding,) = findings_of(report, DeviationKind.UNNEEDED_BARRIER)
        assert finding.fix_action is FixAction.REMOVE_BARRIER
        assert finding.details["subsumed_by"] == "wake_up_process"

    def test_barrier_before_full_barrier(self, analyze):
        src = """
        struct d { int state; };
        void f(struct d *p) { p->state = 1; smp_wmb(); smp_mb(); g(); }
        """
        report = analyze(src).check()
        assert len(findings_of(report, DeviationKind.UNNEEDED_BARRIER)) == 1

    def test_wmb_before_rmb_not_redundant(self, analyze):
        src = """
        struct d { int state; };
        void f(struct d *p) { p->state = 1; smp_wmb(); smp_rmb(); g(); }
        """
        report = analyze(src).check()
        assert findings_of(report, DeviationKind.UNNEEDED_BARRIER) == []

    def test_barrier_before_plain_atomic_not_redundant(self, analyze):
        src = """
        struct d { int refs; };
        void f(struct d *p) { smp_mb(); atomic_inc(&p->refs); }
        """
        report = analyze(src).check()
        assert findings_of(report, DeviationKind.UNNEEDED_BARRIER) == []

    def test_barrier_before_ordered_atomic_redundant(self, analyze):
        src = """
        struct d { int refs; };
        void f(struct d *p) { smp_mb(); atomic_inc_return(&p->refs); }
        """
        report = analyze(src).check()
        assert len(findings_of(report, DeviationKind.UNNEEDED_BARRIER)) == 1

    def test_distant_wakeup_not_redundant(self, analyze):
        src = """
        struct d { int a; int b; };
        void f(struct d *p) {
            p->a = 1;
            smp_wmb();
            p->b = 1;
            wake_up(q);
        }
        """
        report = analyze(src).check()
        assert findings_of(report, DeviationKind.UNNEEDED_BARRIER) == []

    def test_paired_barrier_not_checked_for_redundancy(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) {
            p->data = 1;
            smp_wmb();
            p->flag = 1;
        }
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        report = analyze(src).check()
        assert findings_of(report, DeviationKind.UNNEEDED_BARRIER) == []


class TestSeqcount:
    BUGGY = """
    struct cnt { unsigned seq; long bcnt; long pcnt; };
    void add(struct cnt *s) {
        s->seq++;
        smp_wmb();
        s->bcnt += 1;
        s->pcnt += 1;
        smp_wmb();
        s->seq++;
    }
    long get(struct cnt *s) {
        unsigned v;
        long b;
        long p;
        do {
            v = s->seq;
            smp_rmb();
            b = s->bcnt;
            p = s->pcnt;
            smp_rmb();
        } while (v != s->seq);
        report(s->bcnt);
        return b + p;
    }
    """

    def test_escaped_reread_detected(self, analyze):
        report = analyze(self.BUGGY).check()
        (finding,) = findings_of(report, DeviationKind.REPEATED_READ)
        assert finding.object_key.field == "bcnt"
        assert finding.details["captured"] == "b"

    def test_correct_seqcount_has_no_findings(self, analyze):
        src = self.BUGGY.replace("report(s->bcnt);\n", "")
        report = analyze(src).check()
        assert report.ordering_findings == []

    def test_non_duo_multi_pairing_skipped(self, analyze):
        # Three readers + one writer does not match the Figure 5 shape.
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void r1(struct s *p) { if (!p->flag) return; smp_rmb(); g(p->data); }
        void r2(struct s *p) { if (!p->flag) return; smp_rmb(); g(p->data); }
        void r3(struct s *p) { if (!p->flag) return; smp_rmb(); g(p->data); }
        """
        report = analyze(src).check()
        assert report.ordering_findings == []


class TestAnnotations:
    def test_correct_pairing_gets_annotations(self, listing1, analyze):
        report = analyze(listing1).check(annotate=True)
        findings = findings_of(report, DeviationKind.MISSING_ANNOTATION)
        assert findings, "correct pairing should yield annotation findings"
        macros = {f.details["macro"] for f in findings}
        assert macros == {"READ_ONCE", "WRITE_ONCE"}

    def test_buggy_pairing_not_annotated(self, analyze):
        report = analyze(TestMisplacedAccess.PATCH1).check(annotate=True)
        assert findings_of(report, DeviationKind.MISSING_ANNOTATION) == []

    def test_already_annotated_access_skipped(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) {
            p->data = 1;
            smp_wmb();
            WRITE_ONCE(p->flag, 1);
        }
        void r(struct s *p) {
            if (!READ_ONCE(p->flag)) return;
            smp_rmb();
            g(p->data);
        }
        """
        report = analyze(src).check(annotate=True)
        flagged = {
            f.object_key.field
            for f in findings_of(report, DeviationKind.MISSING_ANNOTATION)
        }
        assert "flag" not in flagged
        assert "data" in flagged

    def test_compound_rmw_not_annotated(self, analyze):
        src = """
        struct s { int flag; int cnt; };
        void w(struct s *p) { p->cnt += 1; smp_wmb(); p->flag = 1; }
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->cnt);
        }
        """
        report = analyze(src).check(annotate=True)
        writes = [
            f for f in findings_of(report, DeviationKind.MISSING_ANNOTATION)
            if f.object_key.field == "cnt" and f.details["macro"] == "WRITE_ONCE"
        ]
        assert writes == []

    def test_annotation_disabled_by_default_in_helper(self, listing1, analyze):
        report = analyze(listing1).check(annotate=False)
        assert report.annotation_findings == []


class TestTable3Bucketing:
    def test_breakdown_counts(self, analyze):
        report = analyze(TestMisplacedAccess.PATCH1).check()
        breakdown = report.table3_breakdown()
        assert breakdown["Misplaced memory access"] == 1
        assert sum(breakdown.values()) == 1

    def test_unneeded_not_in_table3(self, analyze):
        src = """
        struct d { int state; };
        void f(struct d *p) { p->state = 1; smp_wmb(); smp_mb(); g(); }
        """
        report = analyze(src).check()
        assert sum(report.table3_breakdown().values()) == 0
        assert len(report.unneeded_findings) == 1
