"""Unit tests for patch generation, the renderer and the editor."""

import textwrap

from repro.checkers.model import DeviationKind
from repro.cparse import astnodes as ast
from repro.cparse.parser import parse_source
from repro.patching.diff import SourceEditor, indentation_of, unified_diff
from repro.patching.generate import PatchGenerator
from repro.patching.render import render_expr


def first_expr(src):
    unit = parse_source(f"void f(void) {{ {src}; }}", "t.c")
    return unit.functions[0].body.stmts[0].expr


def roundtrip(src):
    return render_expr(first_expr(src))


class TestRenderExpr:
    def test_member_arrow(self):
        assert roundtrip("a->b") == "a->b"

    def test_member_dot_chain(self):
        assert roundtrip("a.b.c") == "a.b.c"

    def test_index(self):
        assert roundtrip("a[i]") == "a[i]"

    def test_call(self):
        assert roundtrip("f(a, b)") == "f(a, b)"

    def test_assignment(self):
        assert roundtrip("a->x = 1") == "a->x = 1"

    def test_binary_parenthesization_is_valid(self):
        text = roundtrip("a + b * c")
        reparsed = render_expr(first_expr(text))
        assert reparsed == text  # stable under re-parse

    def test_unary(self):
        assert roundtrip("!a->flag") == "!a->flag"

    def test_ternary(self):
        assert roundtrip("a ? b : c") == "a ? b : c"

    def test_string_literal(self):
        assert roundtrip('"hi"') == '"hi"'

    def test_deref_member_base_parenthesized(self):
        text = roundtrip("(*p).x")
        assert text == "(*p).x"


class TestSourceEditor:
    SRC = "line1\nline2\nline3\n"

    def test_replace_line(self):
        editor = SourceEditor(self.SRC)
        editor.replace_line(2, "LINE2")
        assert editor.result() == "line1\nLINE2\nline3\n"

    def test_delete_line(self):
        editor = SourceEditor(self.SRC)
        editor.delete_line(2)
        assert editor.result() == "line1\nline3\n"

    def test_insert_before_and_after(self):
        editor = SourceEditor(self.SRC)
        editor.insert_before(1, "top")
        editor.insert_after(3, "bottom")
        assert editor.result() == "top\nline1\nline2\nline3\nbottom\n"

    def test_substitute(self):
        editor = SourceEditor(self.SRC)
        assert editor.substitute(1, "line1", "x")
        assert not editor.substitute(2, "absent", "y")
        assert editor.result().startswith("x\n")

    def test_substitute_word_whole_word_only(self):
        editor = SourceEditor("smp_wmb(); also_smp_wmb();\n")
        assert editor.substitute_word(1, "smp_wmb", "smp_rmb")
        assert editor.result() == "smp_rmb(); also_smp_wmb();\n"

    def test_edits_compose_without_shifting(self):
        editor = SourceEditor(self.SRC)
        editor.delete_line(1)
        editor.replace_line(3, "L3")
        editor.insert_after(2, "mid")
        assert editor.result() == "line2\nmid\nL3\n"

    def test_dirty_flag(self):
        editor = SourceEditor(self.SRC)
        assert not editor.dirty
        editor.delete_line(1)
        assert editor.dirty

    def test_no_trailing_newline_preserved(self):
        editor = SourceEditor("a\nb")
        editor.replace_line(1, "A")
        assert editor.result() == "A\nb"

    def test_indentation_of(self):
        assert indentation_of("\t\tx") == "\t\t"
        assert indentation_of("    x") == "    "
        assert indentation_of("x") == ""


class TestUnifiedDiff:
    def test_diff_format(self):
        diff = unified_diff("a\nb\n", "a\nc\n", "f.c")
        assert diff.startswith("--- a/f.c")
        assert "+c" in diff and "-b" in diff

    def test_empty_diff_for_identical(self):
        assert unified_diff("same\n", "same\n", "f.c") == ""


def generate_patches(src, filename="test.c", annotate=False):
    from tests.conftest import Analyzed

    analyzed = Analyzed(src, filename)
    report = analyzed.check(annotate=annotate)
    generator = PatchGenerator({filename: src}, analyzed.cfg_lookup)
    return generator.generate_all(report.all_findings), report


class TestMoveReadPatch:
    SRC = textwrap.dedent("""\
    struct rqst { int len; int recd; int out; };
    void complete(struct rqst *req)
    {
    \treq->len = 10;
    \tsmp_wmb();
    \treq->recd = 1;
    }
    void decode(struct rqst *req)
    {
    \tsmp_rmb();
    \tif (!req->recd)
    \t\treturn;
    \treq->out = req->len;
    }
    """)

    def test_guard_moved_before_barrier(self):
        patches, _ = generate_patches(self.SRC)
        (patch,) = patches
        assert patch.applied
        new = patch.new_source
        assert new.index("if (!req->recd)") < new.index("smp_rmb();")
        # The guard body moved with it.
        guard_pos = new.index("if (!req->recd)")
        assert new.index("return;", guard_pos) < new.index("smp_rmb();")

    def test_diff_mentions_both_lines(self):
        patches, _ = generate_patches(self.SRC)
        diff = patches[0].diff
        assert "-\tsmp_rmb();" in diff or "+\tsmp_rmb();" in diff
        assert "if (!req->recd)" in diff

    def test_header_documents_pairing_and_objects(self):
        patches, _ = generate_patches(self.SRC)
        header = patches[0].header
        assert "Pairing:" in header
        assert "(struct rqst, recd)" in header
        assert "Why:" in header

    def test_patched_source_still_parses(self):
        patches, _ = generate_patches(self.SRC)
        parse_source(patches[0].new_source, "patched.c")


class TestReuseValuePatch:
    SRC = textwrap.dedent("""\
    struct reuse { int socks; int num_socks; };
    void add_sock(struct reuse *r)
    {
    \tr->socks = 1;
    \tsmp_wmb();
    \tr->num_socks++;
    }
    int select_sock(struct reuse *r)
    {
    \tint num = r->num_socks;
    \tif (num == 0)
    \t\treturn 0;
    \tsmp_rmb();
    \tconsume(r->socks);
    \tconsume(r->num_socks);
    \treturn num;
    }
    """)

    def test_reread_replaced_by_captured_value(self):
        patches, _ = generate_patches(self.SRC)
        (patch,) = [
            p for p in patches
            if p.finding.kind is DeviationKind.REPEATED_READ
        ]
        assert patch.applied
        assert "consume(num);" in patch.new_source
        # Only the re-read is replaced; the initial read stays.
        assert "int num = r->num_socks;" in patch.new_source

    def test_patched_source_parses(self):
        patches, _ = generate_patches(self.SRC)
        for patch in patches:
            if patch.applied:
                parse_source(patch.new_source, "patched.c")


class TestReplaceBarrierPatch:
    SRC = textwrap.dedent("""\
    struct ring { int slot; int head; };
    void publish(struct ring *r)
    {
    \tr->slot = 7;
    \tsmp_wmb();
    \tr->head = 1;
    }
    void republish(struct ring *r)
    {
    \tr->slot = 9;
    \tsmp_rmb();
    \tr->head = 2;
    }
    int consume_ring(struct ring *r)
    {
    \tif (!r->head)
    \t\treturn 0;
    \tsmp_rmb();
    \tconsume(r->slot);
    \treturn 1;
    }
    """)

    def test_barrier_renamed(self):
        patches, _ = generate_patches(self.SRC)
        (patch,) = [
            p for p in patches
            if p.finding.kind is DeviationKind.WRONG_BARRIER_TYPE
        ]
        assert patch.applied
        # republish's smp_rmb becomes smp_wmb; the reader keeps its rmb.
        assert patch.new_source.count("smp_wmb();") == 2
        assert patch.new_source.count("smp_rmb();") == 1


class TestRemoveBarrierPatch:
    SRC = textwrap.dedent("""\
    struct d { int got_token; int task; };
    int wake_fn(struct d *data)
    {
    \tdata->got_token = 1;
    \tsmp_wmb();
    \twake_up_process(data->task);
    \treturn 1;
    }
    """)

    def test_barrier_line_deleted(self):
        patches, _ = generate_patches(self.SRC)
        (patch,) = patches
        assert patch.applied
        assert "smp_wmb" not in patch.new_source
        assert "wake_up_process" in patch.new_source


class TestAnnotationPatch:
    SRC = textwrap.dedent("""\
    struct s { int flag; int data; };
    void w(struct s *p)
    {
    \tp->data = 1;
    \tsmp_wmb();
    \tp->flag = 1;
    }
    void r(struct s *p)
    {
    \tif (!p->flag)
    \t\treturn;
    \tsmp_rmb();
    \tconsume(p->data);
    }
    """)

    def test_write_wrapped_in_write_once(self):
        patches, _ = generate_patches(self.SRC, annotate=True)
        writes = [
            p for p in patches
            if p.finding.details.get("macro") == "WRITE_ONCE" and p.applied
        ]
        assert writes
        assert any(
            "WRITE_ONCE(p->flag, 1);" in p.new_source for p in writes
        )

    def test_read_wrapped_in_read_once(self):
        patches, _ = generate_patches(self.SRC, annotate=True)
        reads = [
            p for p in patches
            if p.finding.details.get("macro") == "READ_ONCE" and p.applied
        ]
        assert any("READ_ONCE(p->flag)" in p.new_source for p in reads)

    def test_annotated_sources_parse(self):
        patches, _ = generate_patches(self.SRC, annotate=True)
        for patch in patches:
            if patch.applied:
                parse_source(patch.new_source, "patched.c")


class TestGeneratorRobustness:
    def test_missing_file_returns_none(self):
        generator = PatchGenerator({})
        from repro.checkers.model import Finding, FixAction

        finding = Finding(
            kind=DeviationKind.UNNEEDED_BARRIER,
            filename="nope.c", function="f", line=1,
            explanation="", fix_action=FixAction.REMOVE_BARRIER,
        )
        assert generator.generate(finding) is None

    def test_unapplicable_fix_yields_header_only_patch(self):
        src = "void f(void)\n{\n\tsmp_wmb(); smp_mb();\n}\n"
        # Barrier shares its line with other code: removal is manual.
        from tests.conftest import Analyzed

        analyzed = Analyzed(src, "t.c")
        report = analyzed.check()
        generator = PatchGenerator({"t.c": src}, analyzed.cfg_lookup)
        patches = generator.generate_all(report.all_findings)
        for patch in patches:
            assert patch.render()  # header always renders
