"""Tests for the sharded multi-node analysis tier (``repro.cluster``).

The cluster-grade contract: a coordinated run over N worker daemons —
real HTTP, real sockets, real failure injection — must produce a
:class:`CheckReport` bit-for-bit identical to single-node serial
analysis, with or without nodes dying mid-run, and the merge must be
invariant under any shard result arrival order.
"""

import os
import threading
import time

import pytest

from tests.cluster_harness import ClusterHarness
from repro.cluster import ClusterCoordinator, HashRing, ShardClient
from repro.core.engine import (
    OFenceEngine,
    run_in_mode,
    run_mode_names,
)
from repro.corpus import CorpusSpec, generate_corpus
from repro.fuzz.differential import (
    DEFAULT_MODES,
    check_differential,
    run_signature,
)
from repro.fuzz.generate import generate_case
from repro.serve.client import ClientError, ServeClient
from repro.serve.server import ServeError
from repro.serve.shard import ShardService


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec.small(), seed=31)


@pytest.fixture(scope="module")
def serial_signature(corpus):
    return run_signature(OFenceEngine(corpus.source).analyze())


class TestHashRing:
    def test_assignment_is_deterministic(self):
        nodes = ["http://a:1", "http://b:2", "http://c:3"]
        keys = [f"drivers/net/file{i}.c" for i in range(200)]
        first = HashRing(nodes).assign(keys)
        second = HashRing(list(reversed(nodes))).assign(keys)
        assert {k: set(v) for k, v in first.items()} == \
            {k: set(v) for k, v in second.items()}

    def test_every_key_is_owned(self):
        ring = HashRing(["http://a:1", "http://b:2"])
        keys = [f"f{i}.c" for i in range(100)]
        groups = ring.assign(keys)
        assert sorted(k for paths in groups.values() for k in paths) == \
            sorted(keys)

    def test_node_loss_moves_only_the_lost_nodes_files(self):
        nodes = ["http://a:1", "http://b:2", "http://c:3"]
        ring = HashRing(nodes)
        keys = [f"kernel/sched/file{i}.c" for i in range(300)]
        before = {key: ring.node_for(key) for key in keys}
        live = {"http://a:1", "http://c:3"}
        for key in keys:
            after = ring.node_for(key, live)
            if before[key] != "http://b:2":
                assert after == before[key]
            else:
                assert after in live

    def test_empty_live_set_and_empty_nodes(self):
        ring = HashRing(["http://a:1"])
        assert ring.node_for("x.c", set()) is None
        with pytest.raises(ValueError):
            HashRing([])


class TestParity:
    def test_three_node_cluster_matches_serial_bit_for_bit(
        self, corpus, serial_signature
    ):
        with ClusterHarness(nodes=3) as harness:
            result = harness.coordinator.analyze(corpus.source)
        assert run_signature(result) == serial_signature

    def test_every_stage_actually_crossed_the_wire(self, corpus):
        with ClusterHarness(nodes=3) as harness:
            result = harness.coordinator.analyze(corpus.source)
            snap = harness.executor.snapshot()
        counters = result.profile.counters
        assert counters.get("exec.dispatched", 0) > 0
        assert counters.get("pair.shards", 0) > 0
        assert counters.get("check.shards", 0) > 0
        assert snap["rpcs"] >= 3  # scan + cand + check at minimum
        assert snap["scan_files_lost"] == 0
        assert snap["scan_duplicates"] == 0

    def test_warm_rerun_matches_and_hits_node_caches(
        self, corpus, serial_signature
    ):
        with ClusterHarness(nodes=2) as harness:
            harness.coordinator.analyze(corpus.source)
            result = harness.coordinator.analyze(corpus.source)
            shard_snaps = [
                ServeClient(url).metrics()["shard"]
                for url in harness.urls
            ]
        assert run_signature(result) == serial_signature
        assert sum(s["scan_warm_hits"] for s in shard_snaps) > 0

    def test_single_node_cluster_matches(self, corpus, serial_signature):
        with ClusterHarness(nodes=1) as harness:
            result = harness.coordinator.analyze(corpus.source)
        assert run_signature(result) == serial_signature


class TestFailover:
    def test_node_killed_mid_run_recovers_bit_for_bit(
        self, corpus, serial_signature
    ):
        with ClusterHarness(nodes=3) as harness:
            killed = threading.Event()

            def kill_first(url: str) -> None:
                if url == harness.urls[0] and not killed.is_set():
                    killed.set()
                    harness.kill(0)

            harness.executor.on_scan_payload = kill_first
            result = harness.coordinator.analyze(corpus.source)
            snap = harness.executor.snapshot()
        assert killed.is_set(), "kill hook never fired"
        assert run_signature(result) == serial_signature
        assert snap["nodes_up"] == 2
        assert snap["node_failures"] == 1
        assert snap["redispatches"] >= 1

    def test_node_dead_before_run_is_routed_around(
        self, corpus, serial_signature
    ):
        with ClusterHarness(nodes=3) as harness:
            harness.kill(1)
            harness.coordinator.probe()
            result = harness.coordinator.analyze(corpus.source)
            snap = harness.executor.snapshot()
        assert run_signature(result) == serial_signature
        assert snap["nodes_up"] == 2

    def test_all_nodes_down_falls_back_to_serial(
        self, corpus, serial_signature
    ):
        with ClusterHarness(nodes=2) as harness:
            for index in (0, 1):
                harness.kill(index)
            result = harness.coordinator.analyze(corpus.source)
            snap = harness.executor.snapshot()
        assert run_signature(result) == serial_signature
        assert snap["nodes_up"] == 0

    def test_probe_revives_a_node_that_came_back(self, corpus):
        with ClusterHarness(nodes=2) as harness:
            executor = harness.executor
            executor._mark_down(executor._nodes[1])
            assert executor.snapshot()["nodes_up"] == 1
            status = harness.coordinator.probe()
            assert all(status.values())
            assert executor.snapshot()["nodes_up"] == 2
            assert executor.snapshot()["nodes_revived"] == 1


class TestMergeDeterminism:
    """Satellite: shard arrival order must not affect the report."""

    def test_any_arrival_order_yields_identical_report(self):
        case = generate_case(7)
        reference = run_signature(run_in_mode("serial", case.source))
        permutations = [
            (0.0, 0.0, 0.0),
            (0.05, 0.0, 0.0),
            (0.0, 0.05, 0.0),
            (0.0, 0.0, 0.05),
            (0.05, 0.025, 0.0),
        ]
        for delays in permutations:
            with ClusterHarness(nodes=3) as harness:
                node_delay = dict(zip(harness.urls, delays))

                def make_client(url, node_delay=node_delay):
                    return _SlowClient(url, delay=node_delay[url])

                coord = ClusterCoordinator(
                    harness.urls, client_factory=make_client
                )
                try:
                    result = coord.analyze(case.source)
                finally:
                    coord.close()
            assert run_signature(result) == reference, (
                f"merge diverged under node delays {delays}"
            )


class _SlowClient(ShardClient):
    """ShardClient whose responses land late: reorders shard arrival."""

    def __init__(self, base_url: str, delay: float = 0.0, **kwargs):
        super().__init__(base_url, **kwargs)
        self._delay = delay

    def _request(self, method, path, body=None):
        out = super()._request(method, path, body)
        if self._delay and path.startswith("/v1/shard/"):
            time.sleep(self._delay)
        return out


class TestShardService:
    def _service(self, **kwargs) -> ShardService:
        service = ShardService(**kwargs)
        service.handle("ctx", {
            "epoch": "e1", "defines": {}, "headers": {},
            "write_window": 5, "read_window": 50,
        })
        return service

    def test_unknown_epoch_answers_428(self):
        service = self._service()
        with pytest.raises(ServeError) as err:
            service.handle("scan", {"epoch": "other", "jobs": []})
        assert err.value.status == 428
        assert service.snapshot()["epoch_misses"] == 1

    def test_unknown_namespace_answers_409(self):
        service = self._service()
        with pytest.raises(ServeError) as err:
            service.handle("cand", {
                "epoch": "e1", "ns": "nope",
                "token": [1, False, False, True, True], "refs": [],
            })
        assert err.value.status == 409
        assert service.snapshot()["ns_misses"] == 1

    def test_draining_node_sheds_shard_traffic_with_503(self):
        service = ShardService(accepting=lambda: False)
        with pytest.raises(ServeError) as err:
            service.handle("ctx", {"epoch": "e1"})
        assert err.value.status == 503
        assert err.value.retry_after is not None
        assert service.snapshot()["rejected_draining"] == 1

    def test_admission_limit_answers_503_busy(self):
        service = self._service(max_inflight=1)
        service._slots.acquire()
        try:
            with pytest.raises(ServeError) as err:
                service.handle("scan", {"epoch": "e1", "jobs": []})
            assert err.value.status == 503
            assert service.snapshot()["rejected_busy"] == 1
        finally:
            service._slots.release()


class TestClientRetry:
    """Satellite: connection resets back off like 503s do."""

    def _client(self) -> ServeClient:
        return ServeClient("http://127.0.0.1:9")

    def test_connection_reset_backs_off_and_retries(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        calls = {"n": 0}

        def submit():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionResetError("peer reset")
            return {"status": "done"}

        out = self._client().submit_with_retry(submit)
        assert out == {"status": "done"}
        assert calls["n"] == 3
        assert sleeps == [0.25, 0.5]

    def test_reset_after_503_honours_the_retry_after_hint(
        self, monkeypatch
    ):
        sleeps: list[float] = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        responses = [
            ClientError(503, "busy", retry_after=2.5),
            ConnectionResetError("peer reset"),
        ]

        def submit():
            if responses:
                raise responses.pop(0)
            return {"status": "done"}

        out = self._client().submit_with_retry(submit)
        assert out == {"status": "done"}
        assert sleeps == [2.5, 2.5]

    def test_exhausted_retries_raise_the_last_error(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _s: None)

        def submit():
            raise ConnectionRefusedError("down for good")

        with pytest.raises(ConnectionRefusedError):
            self._client().submit_with_retry(submit, attempts=3)

    def test_non_503_http_errors_raise_immediately(self):
        calls = {"n": 0}

        def submit():
            calls["n"] += 1
            raise ClientError(400, "bad request")

        with pytest.raises(ClientError):
            self._client().submit_with_retry(submit)
        assert calls["n"] == 1


class TestRunMode:
    def test_cluster_mode_is_registered(self):
        assert "cluster" in run_mode_names()
        assert "cluster" in DEFAULT_MODES

    def test_differential_clean_over_fuzz_seeds(self):
        seeds = int(os.environ.get("CLUSTER_DIFF_SEEDS", "3"))
        for seed in range(seeds):
            case = generate_case(seed)
            diffs = check_differential(
                lambda case=case: case.source,
                modes=("serial", "cluster"),
            )
            assert diffs == [], f"seed {seed}: {diffs}"


class TestMetrics:
    def test_coordinator_metrics_expose_the_cluster_group(self, corpus):
        with ClusterHarness(nodes=2) as harness:
            server = harness.coordinator.make_server()
            server.start()
            try:
                client = ServeClient(server.url)
                client.analyze(corpus.source, wait=True)
                snap = client.metrics()
                text = client.metrics_text()
            finally:
                server.stop()
        cluster = snap["cluster"]
        assert cluster["nodes"] == 2
        assert cluster["rpcs"] > 0
        assert cluster["merge_seconds"] >= 0
        assert set(cluster["per_node"]) == set(harness.urls)
        assert "ofence_cluster_rpcs" in text
        assert "ofence_cluster_per_node_rpcs" in text

    def test_node_metrics_expose_the_shard_group(self, corpus):
        with ClusterHarness(nodes=2) as harness:
            harness.coordinator.analyze(corpus.source)
            client = ServeClient(harness.urls[0])
            snap = client.metrics()
            text = client.metrics_text()
        assert snap["shard"]["ops"] > 0
        assert "ofence_shard_scan_files" in text
