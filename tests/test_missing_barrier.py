"""Tests for the §7 missing-barrier advisory analysis."""

from repro.checkers.missing_barrier import (
    MissingBarrierAdvisor,
    advise_missing_barriers,
)
from repro.core.engine import KernelSource, OFenceEngine
from repro.cparse.parser import parse_source


PAIR = """
struct box { int flag; int data0; int data1; };
void publish(struct box *m)
{
\tm->data0 = 1;
\tm->data1 = 2;
\tsmp_wmb();
\tm->flag = 1;
}
int consume_box(struct box *m)
{
\tif (!m->flag)
\t\treturn 0;
\tsmp_rmb();
\tconsume(m->data0);
\tconsume(m->data1);
\treturn 1;
}
"""

MISSING_WRITER = """
void hot_update(struct box *m, int v)
{
\tm->data0 = v;
\tm->data1 = v + 1;
\tm->flag = 1;
}
"""

MISSING_READER = """
int peek_box(struct box *m)
{
\tif (!m->flag)
\t\treturn 0;
\treturn m->data0 + m->data1;
}
"""

INIT_FN = """
void init_box(struct box *m)
{
\tm->data0 = 0;
\tm->data1 = 0;
\tm->flag = 0;
}
"""

STRUCT = "struct box { int flag; int data0; int data1; };\n"


def advise(*extra_sources):
    files = {"pair.c": PAIR}
    for index, src in enumerate(extra_sources):
        files[f"extra{index}.c"] = STRUCT + src
    source = KernelSource(files=files)
    result = OFenceEngine(source).analyze()
    assert result.pairing.pairings, "base pairing must exist"
    advisor = MissingBarrierAdvisor()
    for path, text in files.items():
        advisor.add_unit(parse_source(text, path), path)
    return advisor.advise(result.pairing.pairings)


class TestAdvisor:
    def test_missing_barrier_writer_detected(self):
        (candidate,) = advise(MISSING_WRITER)
        assert candidate.function == "hot_update"
        assert candidate.shape == "writer"
        assert candidate.flag.field == "flag"

    def test_missing_barrier_reader_detected(self):
        (candidate,) = advise(MISSING_READER)
        assert candidate.function == "peek_box"
        assert candidate.shape == "reader"

    def test_init_in_isolation_marked(self):
        (candidate,) = advise(INIT_FN)
        assert candidate.function == "init_box"
        assert candidate.looks_like_initialization

    def test_hot_writer_not_marked_as_init(self):
        (candidate,) = advise(MISSING_WRITER)
        assert not candidate.looks_like_initialization

    def test_paired_functions_never_candidates(self):
        candidates = advise()
        assert candidates == []

    def test_function_with_barrier_not_a_candidate(self):
        with_barrier = MISSING_WRITER.replace(
            "\tm->flag = 1;", "\tsmp_wmb();\n\tm->flag = 1;"
        )
        assert advise(with_barrier) == []

    def test_function_with_ordered_atomic_not_a_candidate(self):
        with_atomic = MISSING_WRITER.replace(
            "\tm->flag = 1;",
            "\tatomic_inc_return(&m->refs);\n\tm->flag = 1;",
        )
        assert advise(with_atomic) == []

    def test_partial_object_access_not_a_candidate(self):
        unrelated = """
void touch_flag_only(struct box *m)
{
\tm->flag = 1;
}
"""
        assert advise(unrelated) == []

    def test_mixed_shape_not_a_candidate(self):
        # Writes the flag but only *reads* the payload: neither a writer
        # nor a reader protocol.
        mixed = """
void mixed(struct box *m)
{
\tconsume(m->data0);
\tconsume(m->data1);
\tm->flag = 1;
}
"""
        assert advise(mixed) == []

    def test_describe_mentions_caveat_for_init(self):
        (candidate,) = advise(INIT_FN)
        assert "initialization" in candidate.describe()


class TestCorpusIntegration:
    def test_corpus_advisory_finds_injected_material(self):
        from repro.corpus import CorpusSpec, generate_corpus

        corpus = generate_corpus(CorpusSpec.small(), seed=6)
        result = OFenceEngine(corpus.source).analyze()
        candidates = advise_missing_barriers(result, corpus.source)
        found = {(c.filename, c.function) for c in candidates}
        for real in corpus.truth.missing_barrier_real:
            assert real in found
        for fp in corpus.truth.missing_barrier_init_fps:
            assert fp in found
        # The init functions are flagged but carry the FP marker.
        init_fns = set(corpus.truth.missing_barrier_init_fps)
        for candidate in candidates:
            if (candidate.filename, candidate.function) in init_fns:
                assert candidate.looks_like_initialization
