"""Unit tests for the persistent findings store (``repro.store``).

Covers run recording, dedup bookkeeping, the triage state machine
(including invalid transitions and suppression semantics), automatic
reopening of fixed findings, stats, and the concurrent-writer hammer.
"""

import threading

import pytest

from repro.store import (
    FindingsStore,
    StoreError,
    TriageError,
    UnknownFinding,
    UnknownRun,
    validate_transition,
)


def rec(fp: str, kind: str = "missing-annotation", line: int = 10,
        file: str = "a.c", function: str = "f") -> dict:
    return {
        "fingerprint": fp, "kind": kind, "file": file,
        "function": function, "line": line, "object": "(s, x)",
        "fix": "add-annotation", "primitive": "smp_wmb",
        "explanation": "needs annotation",
    }


@pytest.fixture
def store(tmp_path):
    with FindingsStore(tmp_path / "store") as st:
        yield st


class TestRecording:
    def test_record_and_list_runs(self, store):
        out = store.record_run(
            records=[rec("aa"), rec("bb")], tree_hash="t1", label="first",
        )
        assert out.run.id == 1
        assert out.new_fingerprints == ["aa", "bb"]
        assert out.known_fingerprints == []
        runs = store.runs()
        assert [r.id for r in runs] == [1]
        assert runs[0].finding_count == 2
        assert runs[0].checker_counts == {"missing-annotation": 2}
        assert runs[0].label == "first"

    def test_dedup_counters(self, store):
        store.record_run(records=[rec("aa"), rec("bb")], tree_hash="t1")
        out = store.record_run(
            records=[rec("bb"), rec("cc")], tree_hash="t2"
        )
        assert out.new_fingerprints == ["cc"]
        assert out.known_fingerprints == ["bb"]
        run = store.run(out.run.id)
        assert (run.dedup_new, run.dedup_hits) == (1, 1)
        finding = store.finding("bb")
        assert finding.times_seen == 2
        assert (finding.first_seen_run, finding.last_seen_run) == (1, 2)

    def test_duplicate_fingerprints_in_one_run_fold(self, store):
        out = store.record_run(
            records=[rec("aa", line=3), rec("aa", line=9)], tree_hash="t",
        )
        assert out.new_fingerprints == ["aa"]
        assert store.finding("aa").times_seen == 2

    def test_records_require_fingerprints(self, store):
        bad = rec("aa")
        bad["fingerprint"] = ""
        with pytest.raises(StoreError):
            store.record_run(records=[bad], tree_hash="t")

    def test_run_limit_and_unknown_run(self, store):
        for i in range(4):
            store.record_run(records=[rec("aa")], tree_hash=f"t{i}")
        assert [r.id for r in store.runs(limit=2)] == [3, 4]
        with pytest.raises(UnknownRun):
            store.run(99)

    def test_store_path_accepts_file_and_dir(self, tmp_path):
        with FindingsStore(tmp_path / "dir") as st:
            assert st.path.name == "findings.sqlite"
        with FindingsStore(tmp_path / "explicit.sqlite") as st:
            assert st.path.name == "explicit.sqlite"

    def test_reopen_same_directory(self, tmp_path):
        with FindingsStore(tmp_path) as st:
            st.record_run(records=[rec("aa")], tree_hash="t")
        with FindingsStore(tmp_path) as st:
            assert len(st.runs()) == 1
            assert st.finding("aa").state == "open"

    def test_closed_store_raises(self, tmp_path):
        st = FindingsStore(tmp_path)
        st.close()
        with pytest.raises(StoreError):
            st.runs()


class TestTriage:
    def test_transitions_and_notes(self, store):
        store.record_run(records=[rec("aa")], tree_hash="t")
        finding = store.triage("aa", "confirmed", note="real")
        assert (finding.state, finding.note) == ("confirmed", "real")
        events = store.triage_events("aa")
        assert [(e["from_state"], e["to_state"]) for e in events] == [
            ("open", "confirmed")
        ]

    def test_invalid_transition_rejected(self, store):
        store.record_run(records=[rec("aa")], tree_hash="t")
        store.triage("aa", "false-positive")
        with pytest.raises(TriageError):
            store.triage("aa", "fixed")
        assert store.finding("aa").state == "false-positive"

    def test_unknown_state_and_fingerprint(self, store):
        store.record_run(records=[rec("aa")], tree_hash="t")
        with pytest.raises(TriageError):
            store.triage("aa", "bogus")
        with pytest.raises(UnknownFinding):
            store.triage("zz", "confirmed")

    def test_same_state_updates_note(self, store):
        store.record_run(records=[rec("aa")], tree_hash="t")
        store.triage("aa", "confirmed", note="one")
        finding = store.triage("aa", "confirmed", note="two")
        assert finding.note == "two"

    def test_validate_transition_table(self):
        validate_transition("open", "confirmed")
        validate_transition("fixed", "open")
        validate_transition("false-positive", "confirmed")
        with pytest.raises(TriageError):
            validate_transition("false-positive", "fixed")

    def test_suppression_semantics(self, store):
        store.record_run(
            records=[rec("aa"), rec("bb"), rec("cc")], tree_hash="t"
        )
        store.triage("aa", "false-positive")
        store.triage("bb", "confirmed")
        default_view = [f.fingerprint for f in store.findings(suppress=True)]
        assert default_view == ["bb", "cc"]
        # Explicitly queryable, and still counted in stats.
        assert [f.fingerprint for f in store.findings(
            state="false-positive"
        )] == ["aa"]
        assert store.stats()["findings_false_positive"] == 1

    def test_findings_filters(self, store):
        store.record_run(
            records=[rec("aa"), rec("bb", kind="misplaced-memory-access")],
            tree_hash="t",
        )
        assert [f.fingerprint for f in store.findings(
            checker="misplaced-memory-access"
        )] == ["bb"]
        with pytest.raises(TriageError):
            store.findings(state="bogus")
        # The checker filter is validated against the registry's kinds.
        with pytest.raises(TriageError):
            store.findings(checker="not-a-checker-kind")

    def test_fixed_reopens_on_resighting(self, store):
        store.record_run(records=[rec("aa")], tree_hash="t1")
        store.triage("aa", "fixed", note="patched upstream")
        out = store.record_run(records=[rec("aa")], tree_hash="t2")
        assert out.reopened == ["aa"]
        assert store.finding("aa").state == "open"
        events = store.triage_events("aa")
        assert events[-1]["actor"] == "store"
        assert events[-1]["from_state"] == "fixed"

    def test_false_positive_stays_suppressed_on_resighting(self, store):
        store.record_run(records=[rec("aa")], tree_hash="t1")
        store.triage("aa", "false-positive")
        out = store.record_run(records=[rec("aa")], tree_hash="t2")
        assert out.reopened == []
        assert store.finding("aa").state == "false-positive"


class TestStats:
    def test_stats_shape(self, store):
        stats = store.stats()
        assert stats["runs"] == 0
        assert stats["dedup_hit_rate"] == 0.0
        store.record_run(records=[rec("aa"), rec("bb")], tree_hash="t1")
        store.record_run(records=[rec("aa")], tree_hash="t2")
        stats = store.stats()
        assert stats["runs"] == 2
        assert stats["findings"] == 2
        assert stats["findings_open"] == 2
        assert stats["sightings"] == 3
        assert stats["dedup_new"] == 2
        assert stats["dedup_hits"] == 1
        assert stats["dedup_hit_rate"] == pytest.approx(1 / 3)
        assert stats["last_run_id"] == 2


class TestConcurrency:
    def test_hammer_concurrent_writers(self, tmp_path):
        """Many threads over multiple store instances on one directory:
        every run lands atomically, nothing corrupts or interleaves."""
        instances = [FindingsStore(tmp_path) for _ in range(3)]
        runs_per_thread = 8
        errors: list[Exception] = []

        def writer(instance: FindingsStore, worker: int) -> None:
            try:
                for i in range(runs_per_thread):
                    instance.record_run(
                        records=[
                            rec(f"shared{i % 4}"),
                            rec(f"w{worker}i{i}"),
                        ],
                        tree_hash=f"w{worker}",
                        source=f"worker-{worker}",
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(instances[t % 3], t))
            for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        runs = instances[0].runs()
        assert len(runs) == 6 * runs_per_thread
        # Every run recorded exactly its two findings — no partial or
        # interleaved writes.
        assert all(run.finding_count == 2 for run in runs)
        stats = instances[0].stats()
        assert stats["sightings"] == 2 * len(runs)
        for instance in instances:
            instance.close()

    def test_concurrent_triage_and_record(self, tmp_path):
        with FindingsStore(tmp_path) as store:
            store.record_run(records=[rec("aa")], tree_hash="t0")
            stop = threading.Event()
            errors: list[Exception] = []

            def recorder() -> None:
                try:
                    for i in range(10):
                        store.record_run(
                            records=[rec("aa")], tree_hash=f"t{i}"
                        )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                finally:
                    stop.set()

            def triager() -> None:
                state = "confirmed"
                while not stop.is_set():
                    try:
                        store.triage("aa", state)
                    except TriageError:
                        pass
                    state = "open" if state == "confirmed" else "confirmed"

            threads = [threading.Thread(target=recorder),
                       threading.Thread(target=triager)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert store.finding("aa").times_seen == 11
