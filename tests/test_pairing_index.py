"""Tests for the incremental PairingIndex and its candidate memo."""

import pytest

from repro.analysis.barrier_scan import BarrierScanner
from repro.cparse import parse_source
from repro.pairing.algorithm import PairingEngine, PairingIndex

WRITER = """
struct shared { int flag; int data; };
void w(struct shared *p) { p->data = 1; smp_wmb(); p->flag = 1; }
"""
READER = """
struct shared { int flag; int data; };
void r(struct shared *p) {
    if (!p->flag) return;
    smp_rmb();
    g(p->data);
}
"""
OTHER_WRITER = """
struct other { int a; int b; };
void ow(struct other *p) { p->a = 1; smp_wmb(); p->b = 1; }
"""


def sites_of(source: str, filename: str):
    unit = parse_source(source, filename)
    return BarrierScanner(unit, filename=filename).scan()


def describe(result):
    return (
        [p.describe() for p in result.pairings],
        [s.barrier_id for s in result.unpaired],
    )


class TestIndexDeltas:
    def test_add_and_remove_roundtrip(self):
        index = PairingIndex()
        w = sites_of(WRITER, "w.c")
        index.add_sites("w.c", w)
        assert index.site_count() == 1
        assert index.files() == ["w.c"]
        index.remove_file("w.c")
        assert index.site_count() == 0
        assert index.barriers_for(w[0].keys().pop()) == []

    def test_update_file_is_identity_noop(self):
        index = PairingIndex()
        w = sites_of(WRITER, "w.c")
        index.add_sites("w.c", w)
        updates = index.updates
        assert index.update_file("w.c", w) is False
        assert index.updates == updates
        assert index.update_file("w.c", sites_of(WRITER, "w.c")) is True

    def test_canonical_site_order_ignores_insertion_order(self):
        forward = PairingIndex()
        forward.add_sites("a.c", sites_of(WRITER, "a.c"))
        forward.add_sites("b.c", sites_of(READER, "b.c"))
        backward = PairingIndex()
        backward.add_sites("b.c", sites_of(READER, "b.c"))
        backward.add_sites("a.c", sites_of(WRITER, "a.c"))
        assert [s.barrier_id for s in forward.sites()] == \
            [s.barrier_id for s in backward.sites()]


class TestIncrementalPairing:
    def test_delta_sequence_matches_fresh_build(self):
        index = PairingIndex()
        index.add_sites("w.c", sites_of(WRITER, "w.c"))
        index.add_sites("r.c", sites_of(READER, "r.c"))
        index.add_sites("ow.c", sites_of(OTHER_WRITER, "ow.c"))
        first = PairingEngine(index=index).pair()

        # Churn: remove and re-add a file, then pair again.
        index.remove_file("r.c")
        assert PairingEngine(index=index).pair().pairings == []
        index.add_sites("r.c", sites_of(READER, "r.c"))
        second = PairingEngine(index=index).pair()

        fresh = PairingEngine(
            sites_of(WRITER, "w.c") + sites_of(READER, "r.c")
            + sites_of(OTHER_WRITER, "ow.c")
        ).pair()
        assert describe(first) == describe(fresh)
        assert describe(second) == describe(fresh)

    def test_candidate_memo_reused_across_runs(self):
        index = PairingIndex()
        index.add_sites("w.c", sites_of(WRITER, "w.c"))
        index.add_sites("r.c", sites_of(READER, "r.c"))
        engine = PairingEngine(index=index)
        engine.pair()
        assert engine.stats["candidates_computed"] > 0

        again = PairingEngine(index=index)
        again.pair()
        assert again.stats["candidates_computed"] == 0
        assert again.stats["candidates_reused"] == \
            engine.stats["candidates_computed"]

    def test_memo_invalidated_only_for_touched_objects(self):
        index = PairingIndex()
        index.add_sites("w.c", sites_of(WRITER, "w.c"))
        index.add_sites("r.c", sites_of(READER, "r.c"))
        index.add_sites("ow.c", sites_of(OTHER_WRITER, "ow.c"))
        PairingEngine(index=index).pair()

        # Touch only the (struct other) file: the (struct shared)
        # writer's memoized candidate must survive.
        index.update_file("ow.c", sites_of(OTHER_WRITER, "ow.c"))
        engine = PairingEngine(index=index)
        result = engine.pair()
        assert engine.stats["candidates_reused"] >= 1
        assert engine.stats["candidates_computed"] == 1
        assert len(result.pairings) == 1

    def test_memo_dropped_when_config_changes(self):
        index = PairingIndex()
        index.add_sites("w.c", sites_of(WRITER, "w.c"))
        index.add_sites("r.c", sites_of(READER, "r.c"))
        PairingEngine(index=index).pair()
        relaxed = PairingEngine(index=index, require_ordering=False)
        relaxed.pair()
        assert relaxed.stats["candidates_computed"] > 0
        assert relaxed.stats["candidates_reused"] == 0

    def test_sites_and_index_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            PairingEngine(sites_of(WRITER, "w.c"), index=PairingIndex())

    def test_mismatched_unresolved_flag_rebuilds_privately(self):
        index = PairingIndex(include_unresolved=False)
        index.add_sites("w.c", sites_of(WRITER, "w.c"))
        index.add_sites("r.c", sites_of(READER, "r.c"))
        engine = PairingEngine(index=index, include_unresolved=True)
        result = engine.pair()
        # The shared index must stay untouched by the private rebuild.
        assert index.include_unresolved is False
        assert len(result.pairings) == 1
