"""Tests for the litmus executor (Figures 1-3 made executable)."""

import pytest

from repro.litmus.model import (
    Fence,
    FenceKind,
    LitmusTest,
    Read,
    Thread,
    Write,
    enumerate_outcomes,
    outcome_possible,
)
from repro.litmus import litmus_from_pairing, validate_pairing


def message_passing(writer_fence=True, reader_fence=True):
    """Figure 2: a=1; wmb; b=1  ||  r(b); rmb; r(a)."""
    writer_events = [Write("a", 1)]
    if writer_fence:
        writer_events.append(Fence(FenceKind.WRITE))
    writer_events.append(Write("b", 1))
    reader_events = [Read("b")]
    if reader_fence:
        reader_events.append(Fence(FenceKind.READ))
    reader_events.append(Read("a"))
    return LitmusTest([Thread("w", writer_events),
                       Thread("r", reader_events)])


class TestFigure2:
    def test_forbidden_outcome_excluded_with_both_fences(self):
        test = message_passing(True, True)
        assert not outcome_possible(test, **{"r(b)": 1, "r(a)": 0})

    def test_all_other_outcomes_observable(self):
        test = message_passing(True, True)
        for expected in ({"r(b)": 0, "r(a)": 0}, {"r(b)": 0, "r(a)": 1},
                         {"r(b)": 1, "r(a)": 1}):
            assert outcome_possible(test, **expected)

    def test_missing_writer_fence_admits_forbidden_outcome(self):
        assert outcome_possible(
            message_passing(False, True), **{"r(b)": 1, "r(a)": 0}
        )

    def test_missing_reader_fence_admits_forbidden_outcome(self):
        assert outcome_possible(
            message_passing(True, False), **{"r(b)": 1, "r(a)": 0}
        )


class TestFigure3:
    def test_inconsistent_placement_gives_no_guarantee(self):
        # Figure 3: a accessed before both fences, b after both: the
        # fences order nothing between a and b.
        writer = Thread("w", [Write("a", 1), Fence(FenceKind.WRITE),
                              Write("b", 1)])
        reader = Thread("r", [Read("a"), Fence(FenceKind.READ), Read("b")])
        test = LitmusTest([writer, reader])
        # All four combinations observable, including new-b-old-a AND
        # new-a-old-b.
        for rb, ra in ((0, 0), (0, 1), (1, 0), (1, 1)):
            assert outcome_possible(test, **{"r(b)": rb, "r(a)": ra})


class TestModelMechanics:
    def test_single_thread_sees_program_order(self):
        # Figure 1: a barrier orders a single thread's accesses; reads
        # of own writes respect coherence.
        thread = Thread("t", [Write("x", 1), Read("x")])
        test = LitmusTest([thread])
        outcomes = enumerate_outcomes(test)
        assert outcomes == {next(iter(outcomes))}
        assert next(iter(outcomes)).value("r(x)") == 1

    def test_full_fence_orders_reads_and_writes(self):
        thread = Thread("t", [Write("a", 1), Fence(FenceKind.FULL),
                              Write("b", 1)])
        orders = thread.legal_orders()
        assert len(orders) == 1  # write fence fixes the order

    def test_write_fence_does_not_order_reads(self):
        thread = Thread("t", [Read("a"), Fence(FenceKind.WRITE), Read("b")])
        assert len(thread.legal_orders()) == 2  # reads may cross a wmb

    def test_read_fence_does_not_order_writes(self):
        thread = Thread("t", [Write("a", 1), Fence(FenceKind.READ),
                              Write("b", 1)])
        assert len(thread.legal_orders()) == 2

    def test_coherence_same_location(self):
        thread = Thread("t", [Write("x", 1), Write("x", 2)])
        assert len(thread.legal_orders()) == 1

    def test_unordered_writes_may_reorder(self):
        thread = Thread("t", [Write("a", 1), Write("b", 1)])
        assert len(thread.legal_orders()) == 2

    def test_initial_values(self):
        test = LitmusTest(
            [Thread("r", [Read("x")])], initial={"x": 7}
        )
        (outcome,) = enumerate_outcomes(test)
        assert outcome.value("r(x)") == 7

    def test_execution_budget_guard(self):
        events = [Write(f"v{i}", 1) for i in range(6)]
        test = LitmusTest([Thread("a", events), Thread("b", [
            Read(f"v{i}") for i in range(6)
        ])])
        with pytest.raises(RuntimeError):
            enumerate_outcomes(test, max_executions=10)


BUGGY = """
struct rqst { int len; int recd; int out; };
void complete(struct rqst *req) {
    req->len = 10;
    smp_wmb();
    req->recd = 1;
}
void decode(struct rqst *req) {
    smp_rmb();
    if (!req->recd)
        return;
    req->out = req->len;
}
"""
FIXED = BUGGY.replace(
    "smp_rmb();\n    if (!req->recd)\n        return;",
    "if (!req->recd)\n        return;\n    smp_rmb();",
)


class TestPairingValidation:
    def test_buggy_pairing_admits_inconsistent_outcome(self, analyze):
        (pairing,) = analyze(BUGGY).pair().pairings
        result = validate_pairing(pairing)
        assert not result.is_consistent
        (bad,) = result.inconsistent
        values = dict(bad.values)
        assert values["r(rqst.recd)"] == 1   # flag seen new
        assert values["r(rqst.len)"] == 0    # payload stale

    def test_fixed_pairing_is_consistent(self, analyze):
        (pairing,) = analyze(FIXED).pair().pairings
        result = validate_pairing(pairing)
        assert result.is_consistent

    def test_listing1_is_consistent(self, listing1, analyze):
        (pairing,) = analyze(listing1).pair().pairings
        assert validate_pairing(pairing).is_consistent

    def test_extracted_test_structure(self, analyze):
        (pairing,) = analyze(BUGGY).pair().pairings
        test = litmus_from_pairing(pairing)
        writer, reader = test.threads
        assert any(isinstance(e, Fence) for e in writer.events)
        assert any(isinstance(e, Fence) for e in reader.events)
        assert {w.location for w in writer.writes()} == \
            {"rqst.len", "rqst.recd"}

    def test_describe_mentions_outcome_count(self, analyze):
        (pairing,) = analyze(BUGGY).pair().pairings
        text = validate_pairing(pairing).describe()
        assert "outcomes" in text
