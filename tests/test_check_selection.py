"""Tests for checker selection (CheckerSuite(checks=...))."""

import pytest

from repro.checkers.runner import ALL_CHECKS, CheckerSuite
from repro.core.engine import AnalysisOptions, KernelSource, OFenceEngine

MISPLACED = """
struct s { int flag; int data; };
void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
void r(struct s *p) {
    smp_rmb();
    if (!p->flag) return;
    g(p->data);
}
"""
UNNEEDED = """
struct d { int state; };
void f(struct d *p) { p->state = 1; smp_wmb(); smp_mb(); g(); }
"""


def run(files, checks=None):
    options = AnalysisOptions(
        checks=frozenset(checks) if checks is not None else None
    )
    return OFenceEngine(KernelSource(files=files), options).analyze()


class TestSelection:
    def test_all_checks_by_default(self):
        result = run({"a.c": MISPLACED, "b.c": UNNEEDED})
        assert result.report.ordering_findings
        assert result.report.unneeded_findings

    def test_disable_misplaced(self):
        result = run({"a.c": MISPLACED}, checks={"reread", "wrong-type"})
        assert result.report.ordering_findings == []

    def test_only_unneeded(self):
        result = run({"a.c": MISPLACED, "b.c": UNNEEDED},
                     checks={"unneeded"})
        assert result.report.ordering_findings == []
        assert len(result.report.unneeded_findings) == 1

    def test_disable_unneeded(self):
        result = run({"b.c": UNNEEDED}, checks=ALL_CHECKS - {"unneeded"})
        assert result.report.unneeded_findings == []

    def test_annotate_requires_selection(self):
        clean = MISPLACED.replace(
            "smp_rmb();\n    if (!p->flag) return;",
            "if (!p->flag) return;\n    smp_rmb();",
        )
        with_annotations = run({"a.c": clean}, checks=ALL_CHECKS)
        without = run({"a.c": clean}, checks=ALL_CHECKS - {"annotate"})
        assert with_annotations.report.annotation_findings
        assert without.report.annotation_findings == []

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown checks"):
            CheckerSuite(checks={"frobnicate"})

    def test_legacy_annotate_flag_still_works(self):
        suite = CheckerSuite(annotate=False)
        assert not suite.enabled("annotate")
        assert suite.enabled("misplaced")

    def test_all_checks_constant_matches_suite(self):
        suite = CheckerSuite()
        assert all(suite.enabled(name) for name in ALL_CHECKS)
