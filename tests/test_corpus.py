"""Tests for the synthetic corpus generator and ground truth."""

import random

import pytest

from repro.corpus import CorpusSpec, generate_corpus
from repro.corpus import templates
from repro.cparse.parser import parse_source
from repro.kernel.config import default_config


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(CorpusSpec.small(), seed=11)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = generate_corpus(CorpusSpec.small(), seed=3)
        b = generate_corpus(CorpusSpec.small(), seed=3)
        assert a.source.files == b.source.files
        assert a.truth.bugs == b.truth.bugs

    def test_different_seed_different_corpus(self):
        a = generate_corpus(CorpusSpec.small(), seed=3)
        b = generate_corpus(CorpusSpec.small(), seed=4)
        assert a.source.files != b.source.files


class TestStructure:
    def test_file_counts(self, small_corpus):
        spec = small_corpus.spec
        total = (
            spec.analyzed_files + spec.gated_files + spec.noise_files
        )
        assert len(small_corpus.source.files) == total

    def test_every_file_parses(self, small_corpus):
        config = default_config()
        for path, text in small_corpus.source.files.items():
            parse_source(
                text, path, defines=config.defines(),
                include_resolver=small_corpus.source.resolve_include,
            )

    def test_gated_files_have_disabled_options(self, small_corpus):
        config = default_config()
        gated = [
            path for path, opt in small_corpus.source.file_options.items()
            if not config.is_enabled(opt)
        ]
        assert len(gated) == small_corpus.spec.gated_files

    def test_noise_files_have_no_barriers(self, small_corpus):
        with_barriers = set(small_corpus.source.files_with_barriers())
        noise = [p for p in small_corpus.source.files if "util_" in p]
        assert noise
        assert not (set(noise) & with_barriers)

    def test_headers_include_generic_types(self, small_corpus):
        assert "kernel_types.h" in small_corpus.source.headers
        header = small_corpus.source.headers["kernel_types.h"]
        assert "struct list_head" in header

    def test_cross_file_struct_in_subsystem_header(self, small_corpus):
        subsystem_headers = [
            name for name in small_corpus.source.headers
            if name != "kernel_types.h"
        ]
        assert subsystem_headers  # cross-file pairs exist at 30%


class TestGroundTruth:
    def test_bug_counts_match_spec(self, small_corpus):
        spec = small_corpus.spec
        assert len(small_corpus.truth.bugs) == spec.total_bugs + \
            spec.unneeded_wakeup + spec.unneeded_double + spec.unneeded_atomic

    def test_bug_files_exist(self, small_corpus):
        for bug in small_corpus.truth.bugs:
            assert bug.filename in small_corpus.source.files
            assert bug.function in small_corpus.source.files[bug.filename]

    def test_fp_files_exist(self, small_corpus):
        for fp in small_corpus.truth.false_positives:
            assert fp.filename in small_corpus.source.files

    def test_function_pattern_map_covers_bug_functions(self, small_corpus):
        for bug in small_corpus.truth.bugs:
            assert bug.function in small_corpus.truth.function_pattern

    def test_generic_patterns_registered(self, small_corpus):
        assert len(small_corpus.truth.generic_patterns) >= \
            2 * small_corpus.spec.generic_pairs


class TestTemplates:
    def test_all_templates_emit_parsable_code(self):
        rng = random.Random(5)
        emitters = [
            templates.correct_pair("t01", rng),
            templates.correct_pair("t02", rng, writer_pad=3,
                                   reader_payload_pad=10),
            templates.misplaced_pair("t03", rng),
            templates.reread_cross_pair("t04", rng),
            templates.reread_guard_pair("t05", rng),
            templates.wrong_type_group("t06", rng),
            templates.seqcount_group("t07", rng),
            templates.seqcount_bug_group("t08", rng),
            templates.unneeded_wakeup("t09", rng),
            templates.unneeded_double_barrier("t10", rng),
            templates.unneeded_atomic("t11", rng),
            templates.ipc_pattern("t12", rng),
            templates.solitary_pattern("t13", rng),
            templates.bnx2x_fp_pair("t14", rng),
            templates.sweep_noise_pattern("t15", rng, family=0),
        ]
        for pattern in emitters:
            for chunk in pattern.chunks:
                parse_source(chunk, pattern.pattern_id + ".c")

    def test_cross_file_pattern_has_two_chunks_and_header(self):
        rng = random.Random(5)
        pattern = templates.correct_pair("x1", rng, cross_file=True)
        assert len(pattern.chunks) == 2
        assert "struct obj_x1" in pattern.header_code

    def test_generic_pattern_chunks_parse_with_types_header(self):
        rng = random.Random(5)
        pattern = templates.generic_type_pair("g1", rng, type_index=0)
        for chunk in pattern.chunks:
            parse_source(chunk, "g.c")

    def test_bug_records_reference_emitted_functions(self):
        rng = random.Random(5)
        pattern = templates.misplaced_pair("b1", rng)
        (bug,) = pattern.bugs
        assert bug.function in pattern.chunks[0]

    def test_noise_functions_have_no_barriers(self):
        rng = random.Random(5)
        code = templates.noise_functions("n1", rng)
        assert "smp_" not in code
        parse_source(code, "n.c")
