"""Diff classifier tests: planted deltas, counting invariants, mirror
symmetry, and bit-for-bit determinism.

The property suite drives :func:`repro.store.diff.classify` with
arbitrary synthetic runs and holds the documented invariants::

    new + reappeared + persistent == |run B|
    resolved + persistent         == |run A|
    diff(A, B).resolved == diff(B, A).new + diff(B, A).reappeared
"""

import random

from repro.core.engine import KernelSource, OFenceEngine
from repro.store import FindingsStore, classify

WRITER = (
    "struct s { int flag; int data; };\n"
    "void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }\n"
)
READER = (
    "struct s { int flag; int data; };\n"
    "void r(struct s *p) {\n"
    "\tif (!p->flag) return;\n"
    "\tsmp_rmb();\n"
    "\tg(p->data);\n"
    "}\n"
)
#: READER with the flag check moved after the barrier: plants a
#: misplaced-read finding the base tree does not have.
BUGGY_READER = READER.replace(
    "\tif (!p->flag) return;\n\tsmp_rmb();",
    "\tsmp_rmb();\n\tif (!p->flag) return;",
)


def row(fp: str) -> dict:
    return {
        "fingerprint": fp, "kind": "missing-annotation", "file": "a.c",
        "function": "f", "line": 5, "explanation": "e", "state": "open",
    }


def rows(fps) -> dict[str, dict]:
    return {fp: row(fp) for fp in fps}


def record_result(store: FindingsStore, result, tree: str) -> int:
    return store.record_run(result, tree_hash=tree).run.id


class TestPlantedDelta:
    def test_injected_bug_shows_up_as_exactly_the_new_findings(
        self, tmp_path
    ):
        base = OFenceEngine(KernelSource(
            files={"w.c": WRITER, "r.c": READER}
        )).analyze()
        buggy = OFenceEngine(KernelSource(
            files={"w.c": WRITER, "r.c": BUGGY_READER}
        )).analyze()
        base_fps = {f.fingerprint for f in base.report.all_findings}
        buggy_fps = {f.fingerprint for f in buggy.report.all_findings}
        planted = buggy_fps - base_fps
        assert planted  # the edit introduces at least one finding

        with FindingsStore(tmp_path) as store:
            a = record_result(store, base, "rev-a")
            b = record_result(store, buggy, "rev-b")
            diff = store.diff(a, b)
        assert {e.fingerprint for e in diff.new} == planted
        assert not diff.reappeared
        assert {e.fingerprint for e in diff.resolved} == \
            base_fps - buggy_fps
        assert {e.fingerprint for e in diff.persistent} == \
            base_fps & buggy_fps

    def test_fix_then_regress_is_reappeared(self, tmp_path):
        base = OFenceEngine(KernelSource(
            files={"w.c": WRITER, "r.c": BUGGY_READER}
        )).analyze()
        fixed = OFenceEngine(KernelSource(
            files={"w.c": WRITER, "r.c": READER}
        )).analyze()
        with FindingsStore(tmp_path) as store:
            record_result(store, base, "rev-a")        # bug present
            a = record_result(store, fixed, "rev-b")   # bug fixed
            b = record_result(store, base, "rev-c")    # bug regressed
            diff = store.diff(a, b)
        base_fps = {
            f.fingerprint for f in base.report.all_findings
        }
        fixed_fps = {
            f.fingerprint for f in fixed.report.all_findings
        }
        assert {e.fingerprint for e in diff.reappeared} == \
            base_fps - fixed_fps
        assert not diff.new  # everything was already known from rev-a


class TestCountingInvariants:
    def test_property_random_runs(self):
        rng = random.Random(7)
        universe = [f"fp{i:02d}" for i in range(24)]
        for trial in range(200):
            run_a = rows(rng.sample(universe, rng.randrange(0, 16)))
            run_b = rows(rng.sample(universe, rng.randrange(0, 16)))
            seen = frozenset(rng.sample(universe, rng.randrange(0, 24)))

            fwd = classify(1, 2, run_a, run_b, seen)
            counts = fwd.counts
            assert counts["new"] + counts["reappeared"] \
                + counts["persistent"] == len(run_b)
            assert counts["resolved"] + counts["persistent"] == len(run_a)
            # Every fingerprint lands in exactly one class.
            classified = (
                [e.fingerprint for e in fwd.new]
                + [e.fingerprint for e in fwd.reappeared]
                + [e.fingerprint for e in fwd.persistent]
                + [e.fingerprint for e in fwd.resolved]
            )
            assert len(classified) == len(set(classified))
            assert set(classified) == set(run_a) | set(run_b)

    def test_mirror_symmetry(self):
        rng = random.Random(13)
        universe = [f"fp{i:02d}" for i in range(20)]
        for trial in range(100):
            run_a = rows(rng.sample(universe, rng.randrange(0, 14)))
            run_b = rows(rng.sample(universe, rng.randrange(0, 14)))
            fwd = classify(1, 2, run_a, run_b, frozenset(universe))
            rev = classify(2, 1, run_b, run_a, frozenset(universe))
            assert {e.fingerprint for e in fwd.resolved} == \
                {e.fingerprint for e in rev.new} \
                | {e.fingerprint for e in rev.reappeared}
            assert {e.fingerprint for e in fwd.persistent} == \
                {e.fingerprint for e in rev.persistent}

    def test_empty_runs(self):
        diff = classify(1, 2, {}, {}, frozenset())
        assert diff.counts == {
            "new": 0, "reappeared": 0, "persistent": 0, "resolved": 0
        }

    def test_reappeared_requires_history(self):
        only_b = rows(["aa"])
        no_history = classify(1, 2, {}, only_b, frozenset())
        assert [e.fingerprint for e in no_history.new] == ["aa"]
        with_history = classify(1, 2, {}, only_b, frozenset({"aa"}))
        assert [e.fingerprint for e in with_history.reappeared] == ["aa"]
        assert not with_history.new


class TestDeterminism:
    def test_diff_json_is_canonical(self):
        run_a = rows(["cc", "aa", "bb"])
        run_b = rows(["bb", "dd", "aa"])
        one = classify(1, 2, run_a, run_b).to_json()
        two = classify(
            1, 2, dict(reversed(run_a.items())),
            dict(reversed(run_b.items())),
        ).to_json()
        assert one == two
        assert one.endswith("\n")

    def test_two_stores_same_records_identical_bytes(self, tmp_path):
        result_a = OFenceEngine(KernelSource(
            files={"w.c": WRITER, "r.c": READER}
        )).analyze()
        result_b = OFenceEngine(KernelSource(
            files={"w.c": WRITER, "r.c": BUGGY_READER}
        )).analyze()
        outputs = []
        for name in ("one", "two"):
            with FindingsStore(tmp_path / name) as store:
                record_result(store, result_a, "rev-a")
                record_result(store, result_b, "rev-b")
                outputs.append(store.diff().to_json())
        assert outputs[0] == outputs[1]
