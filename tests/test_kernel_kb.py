"""Tests for the kernel knowledge base (Tables 1 and 2, wakeups, config)."""

from repro.kernel.barriers import (
    BARRIER_PRIMITIVES,
    BarrierKind,
    ImpliedAccess,
    barrier_spec,
    is_barrier_call,
)
from repro.kernel.config import (
    SUBSYSTEM_OPTIONS,
    KernelConfig,
    allyes_config,
    default_config,
)
from repro.kernel.semantics import (
    FUNCTION_SEMANTICS,
    has_barrier_semantics,
    semantics_of,
)
from repro.kernel.wakeups import WAKEUP_FUNCTIONS, is_wakeup_call


class TestTable1:
    def test_exactly_eight_primitives(self):
        assert len(BARRIER_PRIMITIVES) == 8

    def test_table1_names(self):
        assert set(BARRIER_PRIMITIVES) == {
            "smp_rmb", "smp_wmb", "smp_mb", "smp_store_mb",
            "smp_store_release", "smp_load_acquire",
            "smp_mb__before_atomic", "smp_mb__after_atomic",
        }

    def test_rmb_orders_reads_only(self):
        spec = barrier_spec("smp_rmb")
        assert spec.kind is BarrierKind.READ
        assert spec.is_read_barrier and not spec.is_write_barrier

    def test_wmb_orders_writes_only(self):
        spec = barrier_spec("smp_wmb")
        assert spec.is_write_barrier and not spec.is_read_barrier

    def test_mb_orders_both(self):
        spec = barrier_spec("smp_mb")
        assert spec.is_read_barrier and spec.is_write_barrier

    def test_store_release_writes_after_barrier(self):
        spec = barrier_spec("smp_store_release")
        assert spec.implied_access is ImpliedAccess.STORE_AFTER

    def test_store_mb_writes_before_barrier(self):
        spec = barrier_spec("smp_store_mb")
        assert spec.implied_access is ImpliedAccess.STORE_BEFORE

    def test_load_acquire_reads_before_barrier(self):
        spec = barrier_spec("smp_load_acquire")
        assert spec.implied_access is ImpliedAccess.LOAD_BEFORE

    def test_atomic_modifiers_flagged(self):
        assert barrier_spec("smp_mb__before_atomic").atomic_modifier
        assert barrier_spec("smp_mb__after_atomic").atomic_modifier

    def test_is_barrier_call(self):
        assert is_barrier_call("smp_wmb")
        assert not is_barrier_call("printk")

    def test_unknown_spec_is_none(self):
        assert barrier_spec("not_a_barrier") is None


class TestTable2:
    def test_atomic_inc_is_not_a_barrier(self):
        spec = semantics_of("atomic_inc")
        assert not spec.memory_barrier and not spec.compiler_barrier

    def test_atomic_inc_and_test_is_a_barrier(self):
        spec = semantics_of("atomic_inc_and_test")
        assert spec.memory_barrier and spec.compiler_barrier

    def test_set_bit_is_not_a_barrier(self):
        assert not semantics_of("set_bit").memory_barrier

    def test_test_and_set_bit_is_a_barrier(self):
        assert semantics_of("test_and_set_bit").memory_barrier

    def test_wake_up_process_is_a_barrier(self):
        spec = semantics_of("wake_up_process")
        assert spec.memory_barrier and spec.is_wakeup

    def test_value_returning_rmw_are_ordered(self):
        for name in ("atomic_inc_return", "atomic_dec_and_test",
                     "atomic_cmpxchg", "xchg", "cmpxchg"):
            assert has_barrier_semantics(name), name

    def test_void_atomics_are_not_ordered(self):
        for name in ("atomic_set", "atomic_read", "atomic_add",
                     "clear_bit", "test_bit"):
            assert not has_barrier_semantics(name), name

    def test_unknown_function_has_no_semantics(self):
        assert semantics_of("mystery") is None
        assert not has_barrier_semantics("mystery")

    def test_seqcount_helpers_have_barrier_semantics(self):
        for name in ("read_seqcount_begin", "read_seqcount_retry",
                     "write_seqcount_begin", "write_seqcount_end"):
            assert has_barrier_semantics(name), name

    def test_access_flags_consistent(self):
        for spec in FUNCTION_SEMANTICS.values():
            if spec.is_atomic or spec.is_bitop:
                assert spec.reads or spec.writes, spec.name


class TestWakeups:
    def test_table_wakeups_included(self):
        for name in ("wake_up_process", "wake_up", "complete",
                     "smp_call_function_many"):
            assert is_wakeup_call(name), name

    def test_non_wakeups_excluded(self):
        assert not is_wakeup_call("smp_wmb")
        assert not is_wakeup_call("atomic_inc")

    def test_all_semantics_wakeups_present(self):
        for name, spec in FUNCTION_SEMANTICS.items():
            if spec.is_wakeup:
                assert name in WAKEUP_FUNCTIONS


class TestConfig:
    def test_default_config_disables_exotic(self):
        config = default_config()
        assert not config.is_enabled("CONFIG_EXOTIC_HW")
        assert not config.is_enabled("CONFIG_ALPHA")
        assert config.is_enabled("CONFIG_NET")

    def test_allyes_enables_everything(self):
        config = allyes_config()
        assert all(
            config.is_enabled(opt) for opt in SUBSYSTEM_OPTIONS.values()
        )

    def test_defines_only_enabled_options(self):
        config = KernelConfig(options={"A": True, "B": False})
        assert config.defines() == {"A": "1"}

    def test_enable_disable(self):
        config = KernelConfig()
        config.enable("X")
        assert config.is_enabled("X")
        config.disable("X")
        assert not config.is_enabled("X")

    def test_unknown_option_is_disabled(self):
        assert not KernelConfig().is_enabled("CONFIG_NOPE")

    def test_enabled_options_sorted(self):
        config = KernelConfig(options={"B": True, "A": True, "C": False})
        assert config.enabled_options == ["A", "B"]
