"""Tests for RCU primitive support."""

from repro.analysis.accesses import ObjectKey
from repro.checkers.model import DeviationKind
from repro.kernel.barriers import BarrierKind
from repro.kernel.semantics import has_barrier_semantics


RCU_PAIR = """
struct item { int val; int tag; };
struct table { struct item *head; int gen; };
void publish(struct table *t, struct item *it)
{
\tit->val = 9;
\tit->tag = 1;
\trcu_assign_pointer(t->head, it);
}
int lookup(struct table *t)
{
\tstruct item *it;
\tint v = 0;
\trcu_read_lock();
\tit = rcu_dereference(t->head);
\tif (it)
\t\tv = it->val + it->tag;
\trcu_read_unlock();
\treturn v;
}
"""


class TestRcuSites:
    def test_assign_pointer_is_a_write_barrier_site(self, analyze):
        site = analyze(RCU_PAIR).site("publish", "rcu_assign_pointer")
        assert site.kind is BarrierKind.WRITE

    def test_dereference_is_a_read_barrier_site(self, analyze):
        site = analyze(RCU_PAIR).site("lookup", "rcu_dereference")
        assert site.kind is BarrierKind.READ

    def test_pointer_write_lands_after_the_embedded_barrier(self, analyze):
        site = analyze(RCU_PAIR).site("publish")
        (head_use,) = [
            u for u in site.uses if u.key == ObjectKey("table", "head")
        ]
        assert head_use.side == "after"
        assert head_use.kind.writes

    def test_pointer_read_lands_before_the_embedded_barrier(self, analyze):
        site = analyze(RCU_PAIR).site("lookup")
        (head_use,) = [
            u for u in site.uses if u.key == ObjectKey("table", "head")
        ]
        assert head_use.side == "before"
        assert head_use.kind.reads

    def test_item_initialization_before_publication(self, analyze):
        site = analyze(RCU_PAIR).site("publish")
        val_use = site.best_use(ObjectKey("item", "val"))
        assert val_use.side == "before"

    def test_rcu_read_lock_is_not_a_barrier(self, analyze):
        assert not has_barrier_semantics("rcu_read_lock")
        assert not has_barrier_semantics("call_rcu")
        assert has_barrier_semantics("synchronize_rcu")


class TestRcuPairing:
    def test_publish_lookup_pair(self, analyze):
        result = analyze(RCU_PAIR).pair()
        (pairing,) = result.pairings
        functions = {fn for _, fn in pairing.functions}
        assert functions == {"publish", "lookup"}
        assert ObjectKey("table", "head") in set(pairing.common_objects)

    def test_correct_rcu_code_has_no_findings(self, analyze):
        report = analyze(RCU_PAIR).check()
        assert report.ordering_findings == []
        assert report.unneeded_findings == []

    def test_redundant_wmb_before_assign_pointer(self, analyze):
        src = RCU_PAIR.replace(
            "\trcu_assign_pointer(t->head, it);",
            "\tsmp_wmb();\n\trcu_assign_pointer(t->head, it);",
        )
        report = analyze(src).check()
        unneeded = [
            f for f in report.unneeded_findings
            if f.kind is DeviationKind.UNNEEDED_BARRIER
        ]
        assert len(unneeded) == 1
        assert unneeded[0].details["subsumed_by"] == "rcu_assign_pointer"

    def test_misplaced_init_after_publication_detected(self, analyze):
        # Initializing a field *after* publishing the pointer: readers
        # may observe the item with a stale tag.
        src = RCU_PAIR.replace(
            "\tit->tag = 1;\n\trcu_assign_pointer(t->head, it);",
            "\trcu_assign_pointer(t->head, it);\n\tit->tag = 1;",
        )
        report = analyze(src).check()
        # The reader reads 'tag' after its barrier while the writer now
        # writes it after its own: same-side conflict on 'tag'... the
        # fix bias moves the *read*, which reviewers would reject, but
        # the inconsistency is surfaced either way.
        findings = [
            f for f in report.ordering_findings
            if f.object_key is not None and f.object_key.field == "tag"
        ]
        assert findings

    def test_rcu_sites_bound_other_windows(self, analyze):
        src = """
        struct s { int a; int b; };
        void f(struct s *p, struct q *t) {
            smp_wmb();
            rcu_assign_pointer(t->ptr, p);
            p->a = 1;
        }
        """
        site = analyze(src).site("f", "smp_wmb")
        assert not [u for u in site.uses if u.key == ObjectKey("s", "a")]


class TestRcuCorpus:
    def test_corpus_rcu_pairs_pair_cleanly(self):
        from repro.core.engine import OFenceEngine
        from repro.corpus import CorpusSpec, generate_corpus, score_run

        corpus = generate_corpus(CorpusSpec.small(), seed=17)
        result = OFenceEngine(corpus.source).analyze()
        rcu_sites = [
            s for s in result.sites if s.primitive.startswith("rcu_")
        ]
        assert len(rcu_sites) == 2 * corpus.spec.rcu_pairs
        paired = result.pairing.paired_barriers
        assert all(s.barrier_id in paired for s in rcu_sites)
        score = score_run(result, corpus.truth)
        assert score.missed_bugs == []
        assert score.unexpected_findings == []
