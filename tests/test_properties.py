"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.accesses import ObjectKey
from repro.analysis.barrier_scan import BarrierScanner, ScanLimits
from repro.corpus import CorpusSpec, generate_corpus, score_run
from repro.core.engine import OFenceEngine
from repro.cparse.lexer import TokenKind, tokenize
from repro.cparse.parser import parse_source
from repro.cparse.preprocessor import Preprocessor
from repro.pairing.algorithm import PairingEngine
from repro.patching.diff import SourceEditor
from repro.patching.render import render_expr

identifiers = st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True)


class TestLexerProperties:
    @given(st.lists(
        st.one_of(
            identifiers,
            st.integers(min_value=0, max_value=10**9).map(str),
            st.sampled_from(["+", "-", "*", "/", "->", "==", ";", "(", ")"]),
        ),
        max_size=30,
    ))
    def test_space_separated_tokens_roundtrip(self, tokens):
        text = " ".join(tokens)
        lexed = [t.value for t in tokenize(text)[:-1]]
        assert lexed == [t for t in tokens if t]

    @given(st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"),
            whitelist_characters=" \t\n_;(){}*&!-><=+,./",
        ),
        max_size=200,
    ))
    def test_lexer_terminates_on_arbitrary_input(self, text):
        try:
            tokens = tokenize(text)
        except Exception:
            return  # LexError is fine; hangs are not
        assert tokens[-1].kind is TokenKind.EOF

    @given(st.integers(min_value=0, max_value=2**63),
           st.sampled_from(["", "u", "U", "l", "ul", "ULL"]))
    def test_integer_literals_lex_as_single_token(self, value, suffix):
        toks = tokenize(f"{value}{suffix}")[:-1]
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.NUMBER


class TestPreprocessorProperties:
    @given(st.integers(-100, 100), st.integers(-100, 100),
           st.sampled_from(["+", "-", "*", "==", "!=", "<", ">", "&&", "||"]))
    def test_condition_evaluator_matches_python(self, a, b, op):
        expr = f"({a}) {op} ({b})"
        pp = Preprocessor()
        expected = eval(
            expr.replace("&&", " and ").replace("||", " or ")
        )
        out = pp.preprocess(f"#if {expr}\nint yes;\n#endif")
        taken = any(t.value == "yes" for t in out)
        assert taken == bool(expected)

    @given(identifiers, st.integers(0, 999))
    def test_object_macro_substitution(self, name, value):
        pp = Preprocessor({name: str(value)})
        out = [t.value for t in pp.preprocess(f"int x = {name};")]
        assert str(value) in out


class TestRenderParseProperties:
    exprs = st.recursive(
        st.one_of(
            identifiers.map(lambda n: n),
            st.integers(0, 999).map(str),
        ),
        lambda children: st.one_of(
            st.tuples(children, st.sampled_from(["+", "-", "*"]), children)
            .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
            st.tuples(identifiers, children)
            .map(lambda t: f"{t[0]}->{t[1]}" if t[1].isidentifier()
                 else f"{t[0]}({t[1]})"),
        ),
        max_leaves=8,
    )

    @given(exprs)
    @settings(max_examples=60)
    def test_render_is_stable_under_reparse(self, expr_text):
        src = f"void f(void) {{ x = {expr_text}; }}"
        try:
            unit = parse_source(src, "p.c")
        except Exception:
            return
        expr = unit.functions[0].body.stmts[0].expr.value
        rendered = render_expr(expr)
        unit2 = parse_source(f"void f(void) {{ x = {rendered}; }}", "p2.c")
        rerendered = render_expr(unit2.functions[0].body.stmts[0].expr.value)
        assert rendered == rerendered


class TestEditorProperties:
    @given(
        st.lists(st.from_regex(r"[a-z ]{0,20}", fullmatch=True),
                 min_size=1, max_size=20),
        st.data(),
    )
    def test_deletions_shrink_by_exactly_k_lines(self, lines, data):
        source = "\n".join(lines) + "\n"
        editor = SourceEditor(source)
        count = data.draw(
            st.integers(min_value=0, max_value=len(lines))
        )
        chosen = data.draw(
            st.lists(
                st.integers(1, len(lines)),
                min_size=count, max_size=count, unique=True,
            )
        )
        for number in chosen:
            editor.delete_line(number)
        result_lines = editor.result().splitlines()
        assert len(result_lines) == len(lines) - len(chosen)

    @given(st.lists(st.from_regex(r"[a-z]{1,10}", fullmatch=True),
                    min_size=1, max_size=10))
    def test_replace_then_result_contains_replacement(self, lines):
        source = "\n".join(lines) + "\n"
        editor = SourceEditor(source)
        editor.replace_line(1, "REPLACED")
        assert editor.result().splitlines()[0] == "REPLACED"


def _window_source(rng):
    """Random writer/reader pair with randomized padding distances."""
    wpad = "\n".join("\tcpu_relax();" for _ in range(rng.randint(0, 4)))
    rpad = "\n".join("\tcpu_relax();" for _ in range(rng.randint(0, 8)))
    return f"""
struct s {{ int flag; int data; }};
void w(struct s *p) {{
\tp->data = 1;
{wpad}
\tsmp_wmb();
\tp->flag = 1;
}}
void r(struct s *p) {{
\tif (!p->flag)
\t\treturn;
\tsmp_rmb();
{rpad}
\tg(p->data);
}}
"""


class TestPairingInvariants:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_pairings_always_share_two_ordered_objects(self, seed):
        rng = random.Random(seed)
        src = _window_source(rng)
        unit = parse_source(src, "t.c")
        sites = BarrierScanner(unit, filename="t.c").scan()
        result = PairingEngine(sites).pair()
        for pairing in result.pairings:
            assert len(pairing.common_objects) >= 2
            o1, o2 = pairing.common_objects[:2]
            assert any(b.orders(o1, o2) for b in pairing.barriers)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_barrier_in_exactly_one_bucket(self, seed):
        corpus = generate_corpus(
            CorpusSpec(
                correct_pairs=3, far_writer_pairs=0, misplaced_bugs=1,
                reread_cross_bugs=0, reread_guard_bugs=0, seqcount_bugs=0,
                wrong_type_bugs=0, seqcount_correct=1, bnx2x_fps=0,
                generic_pairs=1, unneeded_wakeup=1, unneeded_double=0,
                unneeded_atomic=0, ipc_patterns=1, solitary=3,
                sweep_noise_families=0, sweep_noise_per_family=0,
                analyzed_files=8, gated_files=1, noise_files=1,
            ),
            seed=seed,
        )
        result = OFenceEngine(corpus.source).analyze()
        paired = result.pairing.paired_barriers
        unpaired = {s.barrier_id for s in result.pairing.unpaired}
        ipc = {s.barrier_id for s in result.pairing.implicit_ipc}
        all_ids = {s.barrier_id for s in result.sites}
        assert paired | unpaired | ipc == all_ids
        assert not (paired & unpaired)
        assert not (paired & ipc)
        assert not (unpaired & ipc)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_detection_is_seed_independent(self, seed):
        spec = CorpusSpec(
            correct_pairs=4, far_writer_pairs=0, misplaced_bugs=2,
            reread_cross_bugs=1, reread_guard_bugs=1, seqcount_bugs=1,
            wrong_type_bugs=1, seqcount_correct=1, bnx2x_fps=1,
            generic_pairs=1, unneeded_wakeup=2, unneeded_double=1,
            unneeded_atomic=1, ipc_patterns=2, solitary=4,
            sweep_noise_families=0, sweep_noise_per_family=0,
            analyzed_files=12, gated_files=1, noise_files=1,
        )
        corpus = generate_corpus(spec, seed=seed)
        result = OFenceEngine(corpus.source).analyze()
        score = score_run(result, corpus.truth)
        assert score.missed_bugs == []
        assert score.unexpected_findings == []


class TestObjectKeyProperties:
    @given(identifiers, identifiers)
    def test_key_equality_and_hash(self, struct, field_name):
        a = ObjectKey(struct, field_name)
        b = ObjectKey(struct, field_name)
        assert a == b
        assert hash(a) == hash(b)
        assert str(a) == f"(struct {struct}, {field_name})"

    @given(identifiers, identifiers, identifiers)
    def test_distinct_structs_distinct_keys(self, s1, s2, field_name):
        if s1 == s2:
            return
        assert ObjectKey(s1, field_name) != ObjectKey(s2, field_name)
