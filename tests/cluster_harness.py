"""In-process multi-daemon cluster harness for the cluster tests.

``ClusterHarness`` starts N real serve daemons (each a
:class:`~repro.serve.server.AnalysisServer` on a loopback port) and a
:class:`~repro.cluster.coordinator.ClusterCoordinator` over them — the
same processes, sockets, and wire protocol production uses, minus the
machines.  ``kill(i)`` takes a node down the hard way: the listener is
shut first so in-flight coordinator RPCs see connection failures, not
graceful errors.
"""

from __future__ import annotations

from repro.cluster import ClusterCoordinator
from repro.serve.server import AnalysisServer


class ClusterHarness:
    """N worker daemons + one coordinator, all in this process."""

    def __init__(self, nodes: int = 3, node_kwargs: dict | None = None,
                 **coordinator_kwargs):
        self.servers = [
            AnalysisServer(**(node_kwargs or {})) for _ in range(nodes)
        ]
        self._killed: set[int] = set()
        self.coordinator: ClusterCoordinator | None = None
        self._coordinator_kwargs = coordinator_kwargs

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterHarness":
        for server in self.servers:
            server.start()
        self.coordinator = ClusterCoordinator(
            self.urls, **self._coordinator_kwargs
        )
        return self

    def stop(self) -> None:
        if self.coordinator is not None:
            self.coordinator.close()
            self.coordinator = None
        for index in range(len(self.servers)):
            self.kill(index)

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accessors ---------------------------------------------------------

    @property
    def urls(self) -> list[str]:
        return [server.url for server in self.servers]

    @property
    def executor(self):
        assert self.coordinator is not None
        return self.coordinator.executor

    # -- fault injection ---------------------------------------------------

    def kill(self, index: int) -> None:
        """Take node ``index`` down abruptly: close the listener first
        (new connections are refused immediately), then tear down the
        service.  Idempotent."""
        if index in self._killed:
            return
        self._killed.add(index)
        server = self.servers[index]
        server._httpd.shutdown()
        server._httpd.server_close()
        server.service.close()
        if server._thread is not None:
            server._thread.join(timeout=5)
            server._thread = None

    def alive(self) -> list[int]:
        return [
            index for index in range(len(self.servers))
            if index not in self._killed
        ]
