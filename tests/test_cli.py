"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def sources(tmp_path):
    writer = tmp_path / "writer.c"
    writer.write_text(
        "struct s { int flag; int data; };\n"
        "void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }\n"
    )
    reader = tmp_path / "reader.c"
    reader.write_text(
        "struct s { int flag; int data; };\n"
        "void r(struct s *p) {\n"
        "\tif (!p->flag) return;\n"
        "\tsmp_rmb();\n"
        "\tg(p->data);\n"
        "}\n"
    )
    return writer, reader


class TestAnalyzeCommand:
    def test_pairs_two_files(self, sources, capsys):
        writer, reader = sources
        assert main(["analyze", str(writer), str(reader)]) == 0
        out = capsys.readouterr().out
        assert "2 barriers, 1 pairings" in out
        assert "pairing:" in out

    def test_patches_flag_prints_patches(self, sources, capsys):
        writer, reader = sources
        buggy = reader.parent / "buggy.c"
        buggy.write_text(reader.read_text().replace(
            "if (!p->flag) return;\n\tsmp_rmb();",
            "smp_rmb();\n\tif (!p->flag) return;",
        ))
        assert main(["analyze", str(writer), str(buggy), "--patches"]) == 0
        out = capsys.readouterr().out
        assert "OFence-generated patch" in out

    def test_window_options(self, sources, capsys):
        writer, reader = sources
        assert main([
            "analyze", str(writer), str(reader),
            "--write-window", "1", "--read-window", "10",
        ]) == 0


class TestCorpusCommands:
    def test_corpus_report(self, capsys):
        assert main(["corpus", "--small", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Section 6.4" in out

    def test_report_includes_figure7(self, capsys):
        assert main(["report", "--small", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--small", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "window=5" in out


class TestArgumentErrors:
    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
