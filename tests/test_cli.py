"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def sources(tmp_path):
    writer = tmp_path / "writer.c"
    writer.write_text(
        "struct s { int flag; int data; };\n"
        "void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }\n"
    )
    reader = tmp_path / "reader.c"
    reader.write_text(
        "struct s { int flag; int data; };\n"
        "void r(struct s *p) {\n"
        "\tif (!p->flag) return;\n"
        "\tsmp_rmb();\n"
        "\tg(p->data);\n"
        "}\n"
    )
    return writer, reader


class TestAnalyzeCommand:
    def test_pairs_two_files(self, sources, capsys):
        writer, reader = sources
        assert main(["analyze", str(writer), str(reader)]) == 0
        out = capsys.readouterr().out
        assert "2 barriers, 1 pairings" in out
        assert "pairing:" in out

    def test_patches_flag_prints_patches(self, sources, capsys):
        writer, reader = sources
        buggy = reader.parent / "buggy.c"
        buggy.write_text(reader.read_text().replace(
            "if (!p->flag) return;\n\tsmp_rmb();",
            "smp_rmb();\n\tif (!p->flag) return;",
        ))
        assert main(["analyze", str(writer), str(buggy), "--patches"]) == 0
        out = capsys.readouterr().out
        assert "OFence-generated patch" in out

    def test_window_options(self, sources, capsys):
        writer, reader = sources
        assert main([
            "analyze", str(writer), str(reader),
            "--write-window", "1", "--read-window", "10",
        ]) == 0

    def test_checks_subset_runs(self, sources, capsys):
        writer, reader = sources
        assert main([
            "analyze", str(writer), str(reader),
            "--checks", "misplaced,reread",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 pairings" in out

    def test_unknown_check_error_lists_registry_names(self, sources):
        from repro.checkers import registry

        writer, reader = sources
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", str(writer), str(reader),
                  "--checks", "misplaced,bogus-checker"])
        message = str(excinfo.value)
        assert "bogus-checker" in message
        # The valid-name list comes from the registry, sorted.
        assert ", ".join(sorted(registry.all_names())) in message


class TestCorpusCommands:
    def test_corpus_report(self, capsys):
        assert main(["corpus", "--small", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Section 6.4" in out

    def test_report_includes_figure7(self, capsys):
        assert main(["report", "--small", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--small", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "window=5" in out


class TestPerformanceFlags:
    def test_analyze_with_workers_and_profile(self, sources, capsys):
        writer, reader = sources
        assert main([
            "analyze", str(writer), str(reader),
            "--workers", "2", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "Stage profile" in out
        assert "scan" in out and "pair" in out

    def test_analyze_cache_dir_warm_run(self, sources, tmp_path, capsys):
        writer, reader = sources
        cache = tmp_path / "scan-cache"
        for _ in range(2):
            assert main([
                "analyze", str(writer), str(reader),
                "--cache-dir", str(cache), "--profile",
            ]) == 0
        out = capsys.readouterr().out
        assert "scan.disk_hits" in out
        assert "2 barriers, 1 pairings" in out

    def test_cache_dir_pointing_at_file_is_a_clean_error(
        self, sources, tmp_path
    ):
        writer, reader = sources
        blocker = tmp_path / "notadir"
        blocker.write_text("")
        with pytest.raises(SystemExit, match="not a directory"):
            main([
                "analyze", str(writer), str(reader),
                "--cache-dir", str(blocker),
            ])

    def test_corpus_accepts_perf_flags(self, tmp_path, capsys):
        assert main([
            "corpus", "--small", "--seed", "5",
            "--cache-dir", str(tmp_path / "c"), "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Stage profile" in out

    def test_report_accepts_perf_flags(self, capsys):
        assert main(["report", "--small", "--seed", "5", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "Stage profile" in out


class TestFuzzCommands:
    def test_fuzz_small_run_exits_zero(self, tmp_path, capsys):
        code = main([
            "fuzz", "--iterations", "3", "--seed", "0",
            "--artifacts", str(tmp_path / "artifacts"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 iterations, 0 crashes" in out

    def test_fuzz_mode_subset(self, tmp_path, capsys):
        code = main([
            "fuzz", "--iterations", "2", "--seed", "1",
            "--modes", "parallel", "--no-reduce",
            "--artifacts", str(tmp_path / "artifacts"),
        ])
        assert code == 0
        assert "2 iterations" in capsys.readouterr().out

    def test_eval_prints_per_checker_table(self, capsys):
        assert main(["eval", "--cases", "9", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out and "recall" in out
        for checker in ("misplaced", "reread", "wrong-type", "unneeded"):
            assert checker in out


class TestArgumentErrors:
    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
