"""Tests for the JSON export and the `ofence json` CI entry point."""

import json

import pytest

from repro.cli import main
from repro.core.engine import KernelSource, OFenceEngine
from repro.core.export import result_to_dict, result_to_json

WRITER = """
struct s { int flag; int data; };
void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
"""
BUGGY_READER = """
struct s { int flag; int data; };
void r(struct s *p) {
    smp_rmb();
    if (!p->flag) return;
    g(p->data);
}
"""


@pytest.fixture(scope="module")
def result():
    source = KernelSource(files={"w.c": WRITER, "r.c": BUGGY_READER})
    return OFenceEngine(source).analyze()


class TestResultToDict:
    def test_stats_section(self, result):
        data = result_to_dict(result)
        stats = data["stats"]
        assert stats["barriers"] == 2
        assert stats["pairings"] == 1
        assert stats["files_analyzed"] == 2
        assert 0 <= stats["coverage"] <= 1

    def test_pairings_section(self, result):
        data = result_to_dict(result)
        (pairing,) = data["pairings"]
        assert len(pairing["barriers"]) == 2
        assert len(pairing["common_objects"]) == 2
        assert not pairing["multi"]

    def test_findings_section(self, result):
        data = result_to_dict(result)
        (finding,) = data["findings"]["ordering"]
        assert finding["kind"] == "misplaced-memory-access"
        assert finding["file"] == "r.c"
        assert finding["object"] == "(struct s, flag)"

    def test_patches_without_diffs_by_default(self, result):
        data = result_to_dict(result)
        assert data["patches"]
        assert "diff" not in data["patches"][0]

    def test_patches_with_diffs(self, result):
        data = result_to_dict(result, include_diffs=True)
        misplaced = [
            p for p in data["patches"]
            if p["finding"].startswith("misplaced")
        ]
        assert "smp_rmb" in misplaced[0]["diff"]

    def test_json_roundtrip(self, result):
        text = result_to_json(result)
        data = json.loads(text)
        assert data["stats"]["pairings"] == 1

    def test_table3_in_export(self, result):
        data = result_to_dict(result)
        assert data["table3"]["Misplaced memory access"] == 1


class TestJsonCommand:
    def test_exit_one_on_bugs(self, tmp_path, capsys):
        w = tmp_path / "w.c"
        w.write_text(WRITER)
        r = tmp_path / "r.c"
        r.write_text(BUGGY_READER)
        code = main(["json", str(w), str(r)])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["stats"]["pairings"] == 1
        assert data["findings"]["ordering"]

    def test_exit_zero_on_clean_code(self, tmp_path, capsys):
        fixed = BUGGY_READER.replace(
            "smp_rmb();\n    if (!p->flag) return;",
            "if (!p->flag) return;\n    smp_rmb();",
        )
        w = tmp_path / "w.c"
        w.write_text(WRITER)
        r = tmp_path / "r.c"
        r.write_text(fixed)
        assert main(["json", str(w), str(r)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["findings"]["ordering"] == []
