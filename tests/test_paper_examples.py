"""End-to-end reproduction of the paper's own listings and patches.

Each test encodes one code excerpt from the paper (lightly adapted to
self-contained form) and asserts OFence's published behaviour on it.
"""

import textwrap

from repro.checkers.model import DeviationKind
from repro.patching.generate import PatchGenerator


def run(analyzed, annotate=False):
    report = analyzed.check(annotate=annotate)
    generator = PatchGenerator(
        {analyzed.filename: analyzed.source}, analyzed.cfg_lookup
    )
    return report, generator.generate_all(report.all_findings)


class TestListing1:
    """Lockless initialization: the motivating correct pattern."""

    def test_pairing_and_no_findings(self, listing1, analyze):
        a = analyze(listing1)
        result = a.pair()
        assert len(result.pairings) == 1
        report = a.check()
        assert report.ordering_findings == []


class TestPatch1:
    """RPC: flag read after the barrier; the patch moves the guard."""

    SRC = textwrap.dedent("""\
    struct rpc_rqst { int priv_len; int reply_bytes_recd; int rcv_len; };
    void xprt_complete_rqst(struct rpc_rqst *req)
    {
    \treq->priv_len = 100;
    \tsmp_wmb();
    \treq->reply_bytes_recd = 1;
    }
    static void call_decode(struct rpc_rqst *req)
    {
    \tsmp_rmb();
    \tif (!req->reply_bytes_recd)
    \t\tgoto out;
    \treq->rcv_len = req->priv_len;
    out:
    \treturn;
    }
    """)

    def test_detection(self, analyze):
        report, _ = run(analyze(self.SRC, "net/sunrpc/xprt.c"))
        (finding,) = report.ordering_findings
        assert finding.kind is DeviationKind.MISPLACED_ACCESS
        assert finding.function == "call_decode"
        assert finding.object_key.field == "reply_bytes_recd"

    def test_patch_moves_guard_before_barrier(self, analyze):
        _, patches = run(analyze(self.SRC, "net/sunrpc/xprt.c"))
        (patch,) = patches
        new = patch.new_source
        assert new.index("if (!req->reply_bytes_recd)") < \
            new.index("smp_rmb();")
        assert new.index("goto out;") < new.index("smp_rmb();")


class TestPatch2:
    """perf events: racy re-read of event->ctx->task."""

    SRC = textwrap.dedent("""\
    struct perf_ctx { int task; int nr_file_filters; };
    void event_install(struct perf_ctx *ctx)
    {
    \tctx->nr_file_filters = 2;
    \tsmp_wmb();
    \tctx->task = 1;
    }
    static void perf_event_addr_filters_apply(struct perf_ctx *ctx)
    {
    \tint task = READ_ONCE(ctx->task);
    \tif (task == 0)
    \t\treturn;
    \tget_task_mm(ctx->task);
    \tsmp_rmb();
    \tconsume(ctx->nr_file_filters);
    }
    """)

    def test_detection_and_fix(self, analyze):
        report, patches = run(analyze(self.SRC, "kernel/events/core.c"))
        (finding,) = [
            f for f in report.ordering_findings
            if f.kind is DeviationKind.REPEATED_READ
        ]
        assert finding.object_key.field == "task"
        (patch,) = [
            p for p in patches
            if p.finding.kind is DeviationKind.REPEATED_READ
        ]
        assert "get_task_mm(task);" in patch.new_source


class TestPatch3:
    """reuseport: num_socks re-read on the wrong side of the barrier."""

    SRC = textwrap.dedent("""\
    struct sock_reuse { int socks; int num_socks; };
    int reuseport_add_sock(struct sock_reuse *reuse)
    {
    \treuse->socks = 1;
    \tsmp_wmb();
    \treuse->num_socks++;
    \treturn 0;
    }
    int reuseport_select_sock(struct sock_reuse *reuse)
    {
    \tint socks = reuse->num_socks;
    \tif (socks == 0)
    \t\treturn 0;
    \tsmp_rmb();
    \tuse(reuse->socks);
    \tpick(reuse->num_socks);
    \treturn socks;
    }
    """)

    def test_detection(self, analyze):
        report, _ = run(analyze(self.SRC, "net/core/sock_reuseport.c"))
        rereads = [
            f for f in report.ordering_findings
            if f.kind is DeviationKind.REPEATED_READ
        ]
        assert len(rereads) == 1
        assert rereads[0].object_key.field == "num_socks"

    def test_patch_reuses_previous_read(self, analyze):
        _, patches = run(analyze(self.SRC, "net/core/sock_reuseport.c"))
        (patch,) = [
            p for p in patches
            if p.finding.kind is DeviationKind.REPEATED_READ
        ]
        assert "pick(socks);" in patch.new_source
        assert "int socks = reuse->num_socks;" in patch.new_source


class TestPatch4:
    """rq_qos: smp_wmb before wake_up_process is unneeded."""

    SRC = textwrap.dedent("""\
    struct rq_wait { int got_token; int task; };
    static int rq_qos_wake_function(struct rq_wait *data)
    {
    \tdata->got_token = 1;
    \tsmp_wmb();
    \twake_up_process(data->task);
    \treturn 1;
    }
    """)

    def test_barrier_removed(self, analyze):
        report, patches = run(analyze(self.SRC, "block/blk-rq-qos.c"))
        (finding,) = report.unneeded_findings
        assert finding.kind is DeviationKind.UNNEEDED_BARRIER
        (patch,) = patches
        assert "smp_wmb" not in patch.new_source


class TestListing3:
    """ARP seqcount counters: four barriers pairing as duos."""

    SRC = textwrap.dedent("""\
    struct xt_counters { unsigned int recseq; long bcnt; long pcnt; };
    void do_add_counters(struct xt_counters *t)
    {
    \tt->recseq++;
    \tsmp_wmb();
    \tt->bcnt += 64;
    \tt->pcnt += 1;
    \tsmp_wmb();
    \tt->recseq++;
    }
    long get_counters(struct xt_counters *t)
    {
    \tunsigned int v;
    \tlong bcnt;
    \tlong pcnt;
    \tdo {
    \t\tv = t->recseq;
    \t\tsmp_rmb();
    \t\tbcnt = t->bcnt;
    \t\tpcnt = t->pcnt;
    \t\tsmp_rmb();
    \t} while (v != t->recseq);
    \treturn bcnt + pcnt;
    }
    """)

    def test_four_barriers_one_pairing(self, analyze):
        result = analyze(self.SRC, "net/ipv4/netfilter/arp_tables.c").pair()
        (pairing,) = result.pairings
        assert len(pairing.barriers) == 4

    def test_correct_duo_has_no_findings(self, analyze):
        report, _ = run(analyze(self.SRC, "net/ipv4/netfilter/arp_tables.c"))
        assert report.ordering_findings == []


class TestListing4:
    """bnx2x: by-design false positive (field written on both sides)."""

    SRC = textwrap.dedent("""\
    struct bnx2x { unsigned long sp_state; int mode; };
    void bnx2x_sp_event(struct bnx2x *bp)
    {
    \tbp->mode = 1;
    \tset_bit(0, &bp->sp_state);
    \tsmp_wmb();
    \tclear_bit(1, &bp->sp_state);
    }
    int bnx2x_sp_poll(struct bnx2x *bp)
    {
    \tif (!(bp->sp_state & 1))
    \t\treturn 0;
    \tsmp_rmb();
    \tconsume(bp->mode);
    \treturn 1;
    }
    """)

    def test_pairing_is_still_correct(self, analyze):
        result = analyze(self.SRC, "drivers/net/bnx2x.c").pair()
        assert len(result.pairings) == 1

    def test_false_positive_patch_produced(self, analyze):
        # The paper: "OFence produces a patch" for this pattern even
        # though the code is correct — the FP is easy to review.
        report, patches = run(analyze(self.SRC, "drivers/net/bnx2x.c"))
        assert any(
            f.object_key is not None and f.object_key.field == "sp_state"
            for f in report.ordering_findings
        )


class TestPatch5:
    """READ_ONCE/WRITE_ONCE annotation extension (§7)."""

    SRC = textwrap.dedent("""\
    struct poll_wq { int triggered; int armed; };
    static int pollwake(struct poll_wq *pwq)
    {
    \tpwq->armed = 1;
    \tsmp_wmb();
    \tpwq->triggered = 1;
    \treturn 0;
    }
    static int poll_schedule_timeout(struct poll_wq *pwq)
    {
    \tif (!pwq->triggered)
    \t\treturn 0;
    \tsmp_rmb();
    \tconsume(pwq->armed);
    \treturn 1;
    }
    """)

    def test_annotations_proposed_on_correct_pairing(self, analyze):
        report, patches = run(analyze(self.SRC, "fs/select.c"),
                              annotate=True)
        assert report.ordering_findings == []
        annotated = [p for p in patches if p.applied]
        sources = [p.new_source for p in annotated]
        assert any("WRITE_ONCE(pwq->triggered, 1);" in s for s in sources)
        assert any("READ_ONCE(pwq->triggered)" in s for s in sources)
