"""Unit tests for the fuzzing subsystem's own machinery.

The smoke test (``test_fuzz_smoke.py``) proves the pipeline survives
the fuzzer; these tests prove the fuzzer itself works — that its
oracles can *fail*, its reducer minimises, and the hardened engine
surfaces failures as data instead of exceptions.
"""

import pytest

from repro.core.engine import (
    AnalysisOptions,
    FileFailure,
    KernelSource,
    OFenceEngine,
    _RUN_MODES,
    get_run_mode,
    register_run_mode,
    run_in_mode,
    run_mode_names,
)
from repro.fuzz.differential import check_differential
from repro.fuzz.evaluate import evaluate
from repro.fuzz.generate import generate_case
from repro.fuzz.harness import crash_detail
from repro.fuzz.metamorphic import TRANSFORMS, check_metamorphic
from repro.fuzz.reduce import ddmin, reduce_case, write_artifact


class TestGenerator:
    def test_cases_analyze_cleanly(self):
        for seed in range(5):
            case = generate_case(seed)
            assert crash_detail(case.files, case.headers) is None, seed

    def test_generation_never_raises(self):
        # Regression: add_noise used to index chunks[-1] on files whose
        # chunk list stayed empty (seed 73 and ~0.8% of seeds).
        for seed in range(501):
            generate_case(seed)

    def test_truth_points_at_real_files_and_functions(self):
        case = generate_case(
            7, force_patterns=["misplaced_pair", "wrong_type_group"]
        )
        assert case.truth.bugs
        for bug in case.truth.bugs:
            assert bug.filename in case.files
            assert bug.function in case.files[bug.filename]

    def test_identifiers_collected_for_renaming(self):
        case = generate_case(3, force_patterns=["correct_pair"])
        assert case.identifiers
        text = "".join(case.files.values())
        for name in case.identifiers:
            assert name in text

    def test_forced_bug_is_detected(self):
        case = generate_case(11, force_patterns=["misplaced_pair"])
        result = run_in_mode("serial", case.source)
        (bug,) = case.truth.bugs
        assert any(bug.matches(f)
                   for f in result.report.ordering_findings)


class TestRunModes:
    def test_registry_contents(self):
        assert {"serial", "parallel", "cached", "incremental"} <= \
            set(run_mode_names())

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown run mode"):
            get_run_mode("warp-speed")

    def test_modes_accept_options(self):
        case = generate_case(5)
        result = run_in_mode("parallel", case.source,
                             AnalysisOptions(annotate=False))
        assert result.report.annotation_findings == []


class TestDifferentialOracle:
    def test_detects_a_lying_mode(self):
        """A mode that drops findings must be reported as divergent."""

        @register_run_mode("_test_lying")
        def lying(source, options=None):
            result = run_in_mode("serial", source, options)
            result.report.ordering_findings = []
            result.report.unneeded_findings = []
            return result

        try:
            case = generate_case(9, force_patterns=["misplaced_pair"])
            diffs = check_differential(
                lambda: case.source, modes=("serial", "_test_lying")
            )
            assert diffs
            assert any("_test_lying" in d for d in diffs)
        finally:
            _RUN_MODES.pop("_test_lying", None)

    def test_clean_on_identical_modes(self):
        case = generate_case(10)
        assert check_differential(
            lambda: case.source, modes=("serial", "serial")
        ) == []


class TestMetamorphicOracle:
    def test_transforms_change_the_text(self):
        import random

        case = generate_case(21, force_patterns=["correct_pair",
                                                 "misplaced_pair"])
        rng = random.Random(0)
        for name, transform in TRANSFORMS.items():
            transformed = transform(case, rng)
            assert transformed.files != case.files, name

    def test_rename_is_invertible(self):
        import random

        from repro.fuzz.metamorphic import transform_rename

        case = generate_case(22, force_patterns=["correct_pair"])
        transformed = transform_rename(case, random.Random(0))
        for new, old in transformed.rename_back.items():
            assert old in case.identifiers
            assert new in "".join(transformed.files.values())

    def test_detects_a_non_preserving_transform(self):
        """Dropping the write barrier is NOT semantics-preserving and
        must surface as a divergence — the oracle is not vacuous."""
        import random

        from repro.fuzz import metamorphic

        def barrier_dropper(case, rng):
            files = {
                path: text.replace("smp_wmb();", "")
                for path, text in case.files.items()
            }
            return metamorphic.TransformedCase("dropper", files,
                                               dict(case.headers))

        metamorphic.TRANSFORMS["_test_dropper"] = barrier_dropper
        try:
            case = generate_case(23, force_patterns=["misplaced_pair"])
            problems = check_metamorphic(
                case, random.Random(0), transforms=["_test_dropper"]
            )
            assert problems
        finally:
            metamorphic.TRANSFORMS.pop("_test_dropper", None)

    def test_acquire_release_findings_survive_all_transforms(self):
        """Publish-before-init findings (and their fingerprints, for the
        noise transforms) are invariant under every transform."""
        import random

        from repro.checkers.model import DeviationKind
        from repro.core.engine import run_in_mode

        case = generate_case(
            31, allow_mutants=False,
            force_patterns=["acqrel_publish_pair", "correct_pair_acqrel",
                            "correct_pair"],
        )
        base = run_in_mode("serial", case.source)
        assert any(
            f.kind is DeviationKind.PUBLISH_BEFORE_INIT
            for f in base.report.ordering_findings
        ), "the planted publish-before-init bug must be found"
        assert check_metamorphic(case, random.Random(0)) == []


class TestReducer:
    def test_ddmin_minimises_to_failure_core(self):
        # Failure: the subset contains both 3 and 7.
        items = list(range(10))
        kept = ddmin(items, lambda sub: 3 in sub and 7 in sub)
        assert sorted(kept) == [3, 7]

    def test_ddmin_requires_failing_input(self):
        with pytest.raises(ValueError):
            ddmin([1, 2, 3], lambda sub: False)

    def test_reduce_case_drops_irrelevant_chunks(self):
        chunks = {
            "a.c": ["/* keep */\nint bad;\n", "/* drop */\nint x;\n"],
            "b.c": ["/* drop too */\nint y;\n"],
        }

        def predicate(candidate):
            text = "".join(c for cs in candidate.values() for c in cs)
            return "bad" in text

        reduced = reduce_case(chunks, predicate)
        text = "".join(c for cs in reduced.values() for c in cs)
        assert "bad" in text
        assert "drop" not in text

    def test_write_artifact_round_trips(self, tmp_path):
        import json

        chunks = {"sub/f.c": ["int x;\n"]}
        headers = {"t.h": "struct t { int a; };\n"}
        path = write_artifact(tmp_path, "crash-seed1", chunks, headers,
                              {"oracle": "crash", "seed": 1})
        target = tmp_path / "crash-seed1"
        assert str(target) == path
        assert (target / "sub__f.c").read_text() == "int x;\n"
        assert (target / "header__t.h").read_text() == headers["t.h"]
        meta = json.loads((target / "repro.json").read_text())
        assert meta["oracle"] == "crash"
        assert meta["manifest"]["sub/f.c"] == "sub__f.c"


class TestNeverRaiseHardening:
    def test_file_failure_compares_as_path(self):
        entry = FileFailure("bad.c", stage="parse", error="boom")
        assert entry == "bad.c"
        assert entry.path == "bad.c"
        assert entry.stage == "parse"
        assert "boom" in entry.describe()

    def test_parse_error_becomes_structured_entry(self):
        # The barrier token makes the file pass the raw-text pre-filter
        # and reach the parser, which then fails on the broken struct.
        source = KernelSource(
            files={"broken.c": "smp_wmb();\nstruct {{{ nope\n"}
        )
        result = OFenceEngine(source).analyze()
        assert result.files_failed == ["broken.c"]
        (entry,) = result.files_failed
        assert entry.stage == "parse"
        assert entry.error

    def test_crashing_checker_becomes_failure_entry(self, monkeypatch):
        from repro.checkers import runner as runner_mod

        def explode(self, pairings):
            raise RuntimeError("synthetic checker crash")

        monkeypatch.setattr(runner_mod.WrongBarrierTypeChecker, "check",
                            explode)
        case = generate_case(4, force_patterns=["correct_pair"])
        result = run_in_mode("serial", case.source)
        assert any(cf.checker == "wrong-type"
                   for cf in result.report.checker_failures)
        assert "synthetic checker crash" in \
            result.report.checker_failures[0].describe()

    def test_crash_oracle_flags_checker_failures(self, monkeypatch):
        from repro.checkers import runner as runner_mod

        def explode(self, pairings):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(runner_mod.UnneededBarrierChecker, "check",
                            explode)
        case = generate_case(6, force_patterns=["unneeded_wakeup"])
        detail = crash_detail(case.files, case.headers)
        assert detail is not None
        assert "unneeded" in detail

    def test_internal_error_not_masked_by_earlier_parse_failure(self):
        """A parse failure on one file must not hide an internal-stage
        failure on a later file: the latter is the real oracle signal."""
        from unittest import mock

        entries = [
            FileFailure("a.c", stage="parse", error="bad struct"),
            FileFailure("b.c", stage="scan", error="scanner blew up"),
        ]
        result = mock.Mock(files_failed=entries)
        result.report.checker_failures = []
        with mock.patch("repro.fuzz.harness.run_in_mode",
                        return_value=result):
            detail = crash_detail({}, {})
        assert detail == "internal error in b.c: scanner blew up"


class TestReplay:
    def test_artifact_replay_line_reproduces_the_case(self, tmp_path):
        """The repro.json replay command must regenerate the exact
        failing case: --case-seed feeds generate_case directly."""
        import json

        from repro.fuzz.harness import run_fuzz

        @register_run_mode("_test_replay_liar")
        def liar(source, options=None):
            result = run_in_mode("serial", source, options)
            result.report.ordering_findings = []
            result.report.unneeded_findings = []
            return result

        try:
            report = run_fuzz(
                iterations=3, seed=2,
                artifacts_dir=str(tmp_path), reduce=False,
                modes=("serial", "_test_replay_liar"),
            )
            failing = [f for f in report.failures
                       if f.oracle == "differential"]
            assert failing, "liar mode should diverge at least once"
            first = failing[0]
            meta = json.loads(
                (tmp_path / f"differential-seed{first.seed}" /
                 "repro.json").read_text())
            assert meta["replay"] == (
                f"repro fuzz --iterations 1 --case-seed {first.seed}"
            )
            replayed = run_fuzz(
                iterations=1, case_seed=first.seed,
                artifacts_dir=str(tmp_path), reduce=False,
                modes=("serial", "_test_replay_liar"),
            )
            assert len(replayed.failures) == 1
            assert replayed.failures[0].seed == first.seed
            assert replayed.failures[0].detail == first.detail
        finally:
            _RUN_MODES.pop("_test_replay_liar", None)


class TestEvaluate:
    def test_eval_scores_every_checker(self):
        report = evaluate(cases=9, seed=0)
        assert {"misplaced", "reread", "wrong-type", "unneeded"} <= \
            set(report.scores)
        rendered = report.render()
        assert "precision" in rendered and "recall" in rendered

    def test_eval_recall_is_perfect_on_planted_bugs(self):
        report = evaluate(cases=9, seed=0)
        for score in report.scores.values():
            assert score.fn == 0, (score.checker, score.fn)
            assert score.recall == 1.0
