"""Stable-fingerprint tests: identity must survive unrelated edits.

The regression test demanded by the store design: shifting a finding's
function by >= 50 lines of unrelated code and renaming unrelated
identifiers preserves every fingerprint, while changing the finding's
own barrier kind changes it.
"""

from collections import Counter

from repro.core.engine import KernelSource, OFenceEngine
from repro.store.fingerprint import (
    compute_fingerprint,
    context_window,
    normalize_path,
)

WRITER_READER = """\
struct s { int flag; int data; };

void w(struct s *p)
{
\tp->data = 1;
\tsmp_wmb();
\tp->flag = 1;
}

void r(struct s *p)
{
\tif (!p->flag)
\t\treturn;
\tsmp_rmb();
\tg(p->data);
}
"""

#: 50+ unrelated lines: self-contained helpers with no barriers.
PADDING = "\n".join(
    f"static int helper_{i}(int value_{i})\n"
    "{\n"
    f"\tint local_{i} = value_{i} + {i};\n"
    f"\treturn local_{i} * 2;\n"
    "}\n"
    for i in range(12)
)


def fingerprints_of(files: dict[str, str]) -> Counter:
    result = OFenceEngine(KernelSource(files=files)).analyze()
    counter: Counter = Counter()
    for finding in result.report.all_findings:
        assert finding.fingerprint, "engine must attach fingerprints"
        counter[finding.fingerprint] += 1
    return counter


class TestFingerprintStability:
    def test_engine_attaches_fingerprints(self):
        base = fingerprints_of({"a.c": WRITER_READER})
        assert base  # the pair produces findings

    def test_fifty_line_shift_preserves_fingerprints(self):
        base = fingerprints_of({"a.c": WRITER_READER})
        shifted = PADDING + "\n" + WRITER_READER
        assert shifted.index("void w") > 50 * 2  # really shifted far
        assert fingerprints_of({"a.c": shifted}) == base

    def test_unrelated_identifier_renames_preserve_fingerprints(self):
        base = fingerprints_of({"a.c": WRITER_READER})
        # Rename the pointer parameter consistently — it is case-local
        # naming, not part of the finding's identity.  (The struct tag
        # and field names ARE identity: they name the accessed object.)
        renamed = (
            WRITER_READER
            .replace("*p", "*ptr")
            .replace("p->", "ptr->")
        )
        assert fingerprints_of({"a.c": renamed}) == base

    def test_shift_plus_renames_preserve_fingerprints(self):
        base = fingerprints_of({"a.c": WRITER_READER})
        mutated = (PADDING + "\n" + WRITER_READER).replace(
            "*p", "*ctx"
        ).replace("p->", "ctx->")
        assert fingerprints_of({"a.c": mutated}) == base

    def test_comment_noise_preserves_fingerprints(self):
        base = fingerprints_of({"a.c": WRITER_READER})
        noisy = WRITER_READER.replace(
            "\tsmp_wmb();", "\t/* publish */\n\n\tsmp_wmb();"
        ).replace("\tsmp_rmb();", "\tsmp_rmb(); /* acquire side */")
        assert fingerprints_of({"a.c": noisy}) == base

    def test_changing_barrier_kind_changes_fingerprints(self):
        base = fingerprints_of({"a.c": WRITER_READER})
        changed = WRITER_READER.replace("smp_wmb", "smp_mb")
        other = fingerprints_of({"a.c": changed})
        # The writer-side findings hash the barrier primitive raw, so
        # none of their identities may survive the swap.
        assert other
        writer_base = {
            fp for fp in base
            if fp not in other
        }
        assert writer_base, "smp_wmb findings must change identity"

    def test_function_rename_changes_fingerprints(self):
        base = fingerprints_of({"a.c": WRITER_READER})
        renamed = WRITER_READER.replace(
            "void r(", "void reader_side("
        )
        assert fingerprints_of({"a.c": renamed}) != base


ACQREL_PUBLISH = """\
struct pub { int payload; int ready; };

void w(struct pub *p)
{
\tsmp_store_release(&p->ready, 1);
\tp->payload = 1;
}

int r(struct pub *p)
{
\tif (!smp_load_acquire(&p->ready))
\t\treturn 0;
\tconsume(p->payload);
\treturn 1;
}
"""


class TestAcquireReleaseFingerprints:
    """Identity rules hold for publish-before-init findings too."""

    def test_finding_gets_a_fingerprint(self):
        base = fingerprints_of({"a.c": ACQREL_PUBLISH})
        assert base

    def test_shift_and_comment_noise_preserve_fingerprints(self):
        base = fingerprints_of({"a.c": ACQREL_PUBLISH})
        shifted = PADDING + "\n" + ACQREL_PUBLISH
        assert fingerprints_of({"a.c": shifted}) == base
        noisy = ACQREL_PUBLISH.replace(
            "\tsmp_store_release(&p->ready, 1);",
            "\t/* publish */\n\n\tsmp_store_release(&p->ready, 1);",
        )
        assert fingerprints_of({"a.c": noisy}) == base

    def test_unrelated_renames_preserve_fingerprints(self):
        base = fingerprints_of({"a.c": ACQREL_PUBLISH})
        renamed = ACQREL_PUBLISH.replace("*p", "*obj").replace(
            "p->", "obj->"
        )
        assert fingerprints_of({"a.c": renamed}) == base

    def test_changing_the_release_primitive_changes_identity(self):
        base = fingerprints_of({"a.c": ACQREL_PUBLISH})
        # A plain smp_wmb no longer implies the flag store, so the
        # publish-before-init identity must not survive the swap.
        changed = ACQREL_PUBLISH.replace(
            "smp_store_release(&p->ready, 1);", "smp_wmb();\n\tp->ready = 1;"
        )
        other = fingerprints_of({"a.c": changed})
        assert not (set(base) & set(other))


class TestNormalization:
    def test_normalize_path(self):
        assert normalize_path("./a/b.c") == "a/b.c"
        assert normalize_path("a\\b.c") == "a/b.c"
        assert normalize_path("a//b/../c.c") == "a/c.c"

    def test_context_window_skips_comments_and_blanks(self):
        text = (
            "void f(void)\n{\n\tint x = 1;\n\n"
            "\t/* noise */\n\tsmp_wmb();\n\tx = 2;\n}\n"
        )
        noisy = (
            "void f(void)\n{\n\tint x = 1;\n\n\n"
            "\t/* more */\n\t/* noise */\n\n\tsmp_wmb();\n"
            "\t// trailing\n\tx = 2;\n}\n"
        )
        assert (
            context_window(text, 6) == context_window(noisy, 9)
        )

    def test_context_window_stops_at_function_boundary(self):
        # The sibling definition above must never leak into the window.
        one = "int other(void)\n{\n\treturn 1;\n}\n" \
              "void f(void)\n{\n\tsmp_wmb();\n}\n"
        two = "int different_one(int arg)\n{\n\treturn arg + 2;\n}\n" \
              "void f(void)\n{\n\tsmp_wmb();\n}\n"
        assert context_window(one, 7) == context_window(two, 7)

    def test_alpha_rename_is_consistent(self):
        a = context_window("void f(void)\n{\n\tcount = count + step;\n}", 3)
        b = context_window("void f(void)\n{\n\ttotal = total + delta;\n}", 3)
        assert a == b

    def test_anchor_tokens_survive(self):
        window = context_window(
            "void f(void)\n{\n\tsmp_wmb();\n\tWRITE_ONCE(x, 1);\n}", 3
        )
        joined = "\n".join(window)
        assert "smp_wmb" in joined
        assert "WRITE_ONCE" in joined

    def test_compute_fingerprint_without_text_is_stable(self):
        class FakeKind:
            value = "missing-annotation"

        class FakeFix:
            value = "add-annotation"

        class FakeFinding:
            kind = FakeKind()
            filename = "a.c"
            function = "f"
            line = 3
            fix_action = FakeFix()
            object_key = None
            barrier = None
            use = None

        one = compute_fingerprint(FakeFinding(), None)
        two = compute_fingerprint(FakeFinding(), None)
        assert one == two
        assert len(one) == 16
