"""Tests for the generated kernel atomic family."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.atomics import (
    ATOMIC_ORDERING,
    Ordering,
    family_size,
    implies_any_barrier,
    implies_full_barrier,
    is_atomic_primitive,
    ordering_of,
)
from repro.kernel.semantics import (
    bounds_exploration_window,
    has_barrier_semantics,
    semantics_of,
)


class TestFamilyGeneration:
    def test_family_exceeds_400_primitives(self):
        # §4.1: "more than 400 primitives".
        assert family_size() > 400

    def test_all_three_prefixes_present(self):
        for prefix in ("atomic_", "atomic64_", "atomic_long_"):
            assert f"{prefix}add_return" in ATOMIC_ORDERING

    def test_void_rmw_unordered(self):
        for name in ("atomic_add", "atomic_inc", "atomic64_sub",
                     "atomic_long_and"):
            assert ordering_of(name) is Ordering.NONE

    def test_value_returning_fully_ordered(self):
        for name in ("atomic_add_return", "atomic_fetch_add",
                     "atomic64_inc_return", "atomic_xchg",
                     "atomic_cmpxchg"):
            assert ordering_of(name) is Ordering.FULL

    def test_relaxed_variants_unordered(self):
        for name in ("atomic_add_return_relaxed", "atomic_xchg_relaxed",
                     "atomic64_fetch_or_relaxed"):
            assert ordering_of(name) is Ordering.NONE

    def test_acquire_release_variants(self):
        assert ordering_of("atomic_add_return_acquire") is Ordering.ACQUIRE
        assert ordering_of("atomic_cmpxchg_release") is Ordering.RELEASE
        assert ordering_of("atomic_read_acquire") is Ordering.ACQUIRE
        assert ordering_of("atomic_set_release") is Ordering.RELEASE

    def test_predicates_fully_ordered_no_variants(self):
        assert ordering_of("atomic_dec_and_test") is Ordering.FULL
        assert ordering_of("atomic_dec_and_test_relaxed") is None

    def test_non_rmw_unordered(self):
        assert ordering_of("atomic_read") is Ordering.NONE
        assert ordering_of("atomic64_set") is Ordering.NONE

    def test_unknown_name_is_none(self):
        assert ordering_of("atomic_frobnicate") is None
        assert not is_atomic_primitive("printk")

    @given(st.sampled_from(sorted(ATOMIC_ORDERING)))
    def test_relaxed_suffix_never_ordered(self, name):
        if name.endswith("_relaxed"):
            assert ordering_of(name) is Ordering.NONE

    @given(st.sampled_from(sorted(ATOMIC_ORDERING)))
    def test_barrier_implications_consistent(self, name):
        ordering = ordering_of(name)
        assert implies_full_barrier(name) == (ordering is Ordering.FULL)
        assert implies_any_barrier(name) == ordering.implies_barrier


class TestSemanticsIntegration:
    def test_generated_primitive_gets_semantics(self):
        spec = semantics_of("atomic64_fetch_add")
        assert spec is not None
        assert spec.is_atomic
        assert spec.memory_barrier

    def test_curated_table_takes_precedence(self):
        # atomic_inc exists in both; the curated entry wins.
        spec = semantics_of("atomic_inc")
        assert "architectures" in spec.description

    def test_read_write_classification(self):
        assert semantics_of("atomic_long_read").reads
        assert not semantics_of("atomic_long_read").writes
        assert semantics_of("atomic64_set").writes
        assert not semantics_of("atomic64_set").reads
        rmw = semantics_of("atomic64_fetch_add")
        assert rmw.reads and rmw.writes

    def test_has_barrier_semantics_for_generated(self):
        assert has_barrier_semantics("atomic64_add_return")
        assert not has_barrier_semantics("atomic64_add_return_relaxed")

    def test_acquire_release_bound_windows_but_no_full_barrier(self):
        assert bounds_exploration_window("atomic_add_return_acquire")
        assert not has_barrier_semantics("atomic_add_return_acquire")


class TestScannerIntegration:
    def test_acquire_atomic_bounds_window(self, analyze):
        src = """
        struct s { int a; int cnt; };
        void f(struct s *p) {
            smp_wmb();
            atomic_add_return_acquire(1, &p->cnt);
            p->a = 1;
        }
        """
        from repro.analysis.accesses import ObjectKey

        site = analyze(src).site("f", "smp_wmb")
        assert not [u for u in site.uses if u.key == ObjectKey("s", "a")]

    def test_relaxed_atomic_does_not_bound_window(self, analyze):
        src = """
        struct s { int a; int cnt; };
        void f(struct s *p) {
            smp_wmb();
            atomic_add_return_relaxed(1, &p->cnt);
            p->a = 1;
        }
        """
        from repro.analysis.accesses import ObjectKey

        site = analyze(src).site("f", "smp_wmb")
        assert [u for u in site.uses if u.key == ObjectKey("s", "a")]

    def test_generated_atomic_access_extracted(self, analyze):
        src = """
        struct s { atomic64_t cnt; int a; };
        void f(struct s *p) {
            p->a = 1;
            smp_wmb();
            atomic64_inc(&p->cnt);
        }
        """
        from repro.analysis.accesses import ObjectKey

        site = analyze(src).site("f")
        uses = [u for u in site.uses if u.key == ObjectKey("s", "cnt")]
        assert uses and uses[0].kind.reads and uses[0].kind.writes

    def test_unneeded_barrier_before_generated_atomic(self, analyze):
        src = """
        struct s { int refs; };
        void f(struct s *p) { smp_mb(); atomic64_inc_return(&p->refs); }
        """
        report = analyze(src).check()
        assert len(report.unneeded_findings) == 1
