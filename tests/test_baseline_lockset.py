"""Tests for the Eraser/RacerX-style lockset baseline."""

from repro.analysis.accesses import ObjectKey
from repro.baselines.lockset import LocksetAnalysis, run_lockset_baseline
from repro.core.engine import KernelSource
from repro.cparse.parser import parse_source


def analyze(src, filename="t.c"):
    analysis = LocksetAnalysis()
    analysis.add_unit(parse_source(src, filename), filename)
    return analysis.report()


class TestLocksetTracking:
    def test_consistently_locked_access_not_a_candidate(self):
        src = """
        struct s { int x; spinlock_t lock; };
        void a(struct s *p) { spin_lock(&p->lock); p->x = 1; spin_unlock(&p->lock); }
        void b(struct s *p) { spin_lock(&p->lock); g(p->x); spin_unlock(&p->lock); }
        """
        report = analyze(src)
        assert ObjectKey("s", "x") not in report.candidate_keys()

    def test_unlocked_shared_write_is_a_candidate(self):
        src = """
        struct s { int x; };
        void a(struct s *p) { p->x = 1; }
        void b(struct s *p) { g(p->x); }
        """
        report = analyze(src)
        assert ObjectKey("s", "x") in report.candidate_keys()

    def test_inconsistent_locking_is_a_candidate(self):
        src = """
        struct s { int x; spinlock_t lock; };
        void a(struct s *p) { spin_lock(&p->lock); p->x = 1; spin_unlock(&p->lock); }
        void b(struct s *p) { g(p->x); }
        """
        report = analyze(src)
        assert ObjectKey("s", "x") in report.candidate_keys()

    def test_different_locks_do_not_protect(self):
        src = """
        struct s { int x; spinlock_t l1; spinlock_t l2; };
        void a(struct s *p) { spin_lock(&p->l1); p->x = 1; spin_unlock(&p->l1); }
        void b(struct s *p) { spin_lock(&p->l2); g(p->x); spin_unlock(&p->l2); }
        """
        report = analyze(src)
        assert ObjectKey("s", "x") in report.candidate_keys()

    def test_read_only_sharing_not_reported(self):
        src = """
        struct s { int x; };
        void a(struct s *p) { g(p->x); }
        void b(struct s *p) { h(p->x); }
        """
        report = analyze(src)
        assert report.candidates == []

    def test_single_function_access_not_reported(self):
        src = """
        struct s { int x; };
        void a(struct s *p) { p->x = 1; }
        """
        assert analyze(src).candidates == []

    def test_mutex_and_rwlock_supported(self):
        src = """
        struct s { int x; mutex_t m; };
        void a(struct s *p) { mutex_lock(&p->m); p->x = 1; mutex_unlock(&p->m); }
        void b(struct s *p) { mutex_lock(&p->m); g(p->x); mutex_unlock(&p->m); }
        """
        report = analyze(src)
        assert ObjectKey("s", "x") not in report.candidate_keys()

    def test_unlock_releases_protection(self):
        src = """
        struct s { int x; spinlock_t lock; };
        void a(struct s *p) {
            spin_lock(&p->lock);
            spin_unlock(&p->lock);
            p->x = 1;
        }
        void b(struct s *p) { spin_lock(&p->lock); g(p->x); spin_unlock(&p->lock); }
        """
        report = analyze(src)
        assert ObjectKey("s", "x") in report.candidate_keys()


class TestRacerXPairing:
    def test_functions_sharing_a_lock_pair(self):
        src = """
        struct s { int x; spinlock_t lock; };
        void a(struct s *p) { spin_lock(&p->lock); p->x = 1; spin_unlock(&p->lock); }
        void b(struct s *p) { spin_lock(&p->lock); g(p->x); spin_unlock(&p->lock); }
        """
        report = analyze(src)
        assert ("a", "b") in report.lock_pairs

    def test_functions_with_distinct_locks_do_not_pair(self):
        src = """
        struct s { int x; spinlock_t l1; spinlock_t l2; };
        void a(struct s *p) { spin_lock(&p->l1); spin_unlock(&p->l1); }
        void b(struct s *p) { spin_lock(&p->l2); spin_unlock(&p->l2); }
        """
        report = analyze(src)
        assert report.lock_pairs == []

    def test_locked_functions_recorded(self):
        src = """
        void a(struct s *p) { spin_lock(&p->lock); spin_unlock(&p->lock); }
        void b(struct s *p) { g(p); }
        """
        report = analyze(src)
        assert report.locked_functions == {"a"}


class TestPaperClaim:
    """§1/§8: lockset tools cannot distinguish barrier-ordering bugs."""

    CORRECT = """
    struct s { int flag; int data; };
    void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
    void r(struct s *p) {
        if (!p->flag) return;
        smp_rmb();
        g(p->data);
    }
    """
    BUGGY = """
    struct s { int flag; int data; };
    void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
    void r(struct s *p) {
        smp_rmb();
        if (!p->flag) return;
        g(p->data);
    }
    """

    def test_lockset_signal_identical_on_correct_and_buggy(self):
        correct = analyze(self.CORRECT)
        buggy = analyze(self.BUGGY)
        # The baseline reports the same candidates either way: it sees
        # unlocked shared accesses, not ordering.
        assert correct.candidate_keys() == buggy.candidate_keys()
        assert correct.candidate_keys() == {
            ObjectKey("s", "flag"), ObjectKey("s", "data"),
        }

    def test_run_on_kernel_source(self):
        source = KernelSource(files={"a.c": self.CORRECT})
        report = run_lockset_baseline(source)
        assert report.accesses_seen > 0

    def test_config_gating_respected(self):
        from repro.kernel.config import KernelConfig

        source = KernelSource(
            files={"a.c": self.CORRECT},
            file_options={"a.c": "CONFIG_OFF"},
        )
        report = run_lockset_baseline(
            source, config=KernelConfig(options={})
        )
        assert report.accesses_seen == 0
