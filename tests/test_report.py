"""Tests for the evaluation-report rendering and figure data."""

import pytest

from repro.core.engine import KernelSource, OFenceEngine
from repro.core.report import (
    DistanceHistogram,
    EvaluationReport,
    WindowSweepPoint,
    read_distance_histogram,
    render_table,
    sweep_to_csv,
    sweep_write_window,
    write_distance_histogram,
)

PAIR = """
struct s { int flag; int data; };
void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
void r(struct s *p) {
    if (!p->flag) return;
    smp_rmb();
    pad1(); pad2(); pad3(); pad4(); pad5(); pad6();
    g(p->data);
}
"""


@pytest.fixture(scope="module")
def result():
    return OFenceEngine(KernelSource(files={"a.c": PAIR})).analyze()


class TestRenderTable:
    def test_alignment(self):
        text = render_table("Title", [("short", 1), ("longer-label", 22)])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[2].startswith("short ")
        # Values align at the same column.
        assert lines[2].index("1") == lines[3].index("22")

    def test_empty_rows(self):
        assert "Empty" in render_table("Empty", [])


class TestHistograms:
    def test_read_histogram_buckets_by_distance(self, result):
        histogram = read_distance_histogram(result, bin_width=5)
        assert sum(histogram.counts) == 2  # flag read + payload read
        # data read sits at distance 7: second bin.
        assert histogram.counts[1] >= 1

    def test_write_histogram(self, result):
        histogram = write_distance_histogram(result)
        assert sum(histogram.counts) == 2  # data + flag writes

    def test_render_contains_bars(self, result):
        text = read_distance_histogram(result).render()
        assert "#" in text

    def test_to_csv(self):
        histogram = DistanceHistogram(bin_edges=[0, 5, 10], counts=[3, 1])
        csv = histogram.to_csv()
        assert csv.splitlines() == [
            "bin_low,bin_high,count", "0,4,3", "5,9,1",
        ]

    def test_distances_capped_at_max(self, result):
        histogram = read_distance_histogram(result, max_distance=5)
        # The far payload read is clamped into the last bin, not lost.
        assert sum(histogram.counts) == 2


class TestSweep:
    def test_sweep_returns_point_per_window(self):
        source = KernelSource(files={"a.c": PAIR})
        points = sweep_write_window(source, [1, 5])
        assert [p.write_window for p in points] == [1, 5]
        assert all(p.incorrect_pairings is None for p in points)

    def test_sweep_to_csv(self):
        points = [
            WindowSweepPoint(1, 10, 2),
            WindowSweepPoint(5, 20, None),
        ]
        csv = sweep_to_csv(points)
        assert csv.splitlines() == [
            "write_window,pairings,incorrect_pairings", "1,10,2", "5,20,",
        ]


class TestEvaluationReport:
    def test_render_without_score(self, result):
        text = EvaluationReport(result).render()
        assert "Section 6.1" in text
        assert "Correct pairings" not in text  # score-only rows absent

    def test_section_timings_listed(self, result):
        text = EvaluationReport(result).section_6_1()
        for stage in ("scan", "pair", "check", "patch"):
            assert stage in text
