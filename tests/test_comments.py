"""Tests for comment extraction and comment-based pairing verification."""

from repro.analysis.comments import (
    attach_hints,
    extract_hints,
    verify_pairings,
    verify_result,
)
from repro.cparse.comments import extract_comments


class TestCommentExtraction:
    def test_line_comment(self):
        (comment,) = extract_comments("int a; // note here\n")
        assert comment.text == "note here"
        assert comment.line == 1
        assert not comment.is_block

    def test_block_comment(self):
        (comment,) = extract_comments("/* hello */ int a;")
        assert comment.text == "hello"
        assert comment.is_block

    def test_multiline_block_comment_joined(self):
        src = "/*\n * first\n * second\n */\nint a;"
        (comment,) = extract_comments(src)
        assert comment.text == "first second"
        assert comment.line == 1
        assert comment.end_line == 4

    def test_comment_like_text_in_string_ignored(self):
        assert extract_comments('char *s = "/* not a comment */";') == []

    def test_comment_like_text_in_char_ignored(self):
        assert extract_comments("char c = '/'; int a; // real\n")[0].text \
            == "real"

    def test_line_numbers_across_comments(self):
        src = "// one\nint a;\n// three\n"
        comments = extract_comments(src)
        assert [c.line for c in comments] == [1, 3]

    def test_empty_source(self):
        assert extract_comments("") == []


class TestHintParsing:
    def test_canonical_hint(self):
        (hint,) = extract_hints(
            "/* Paired with smp_rmb() in my_reader(). */\nsmp_wmb();",
            "f.c",
        )
        assert hint.primitive == "smp_rmb"
        assert hint.function == "my_reader"

    def test_hint_without_function(self):
        (hint,) = extract_hints("// pairs with smp_load_acquire\n", "f.c")
        assert hint.primitive == "smp_load_acquire"
        assert hint.function is None

    def test_bracketed_barrier_form(self):
        # Patch 5 in the paper: "Paired with [barrier] in poll_schedule".
        (hint,) = extract_hints(
            "/* Paired with [barrier] in poll_schedule */\n", "f.c"
        )
        assert hint.function == "poll_schedule"

    def test_non_pairing_comment_ignored(self):
        assert extract_hints("/* initialize the ring */\n", "f.c") == []

    def test_case_insensitive(self):
        (hint,) = extract_hints("/* PAIRED WITH smp_rmb in rd */\n", "f.c")
        assert hint.function == "rd"


SRC = """\
struct s { int flag; int data; };
void w(struct s *p)
{
\tp->data = 1;
\t/* Paired with smp_rmb() in r(). */
\tsmp_wmb();
\tp->flag = 1;
}
void r(struct s *p)
{
\tif (!p->flag)
\t\treturn;
\tsmp_rmb();
\tconsume(p->data);
}
"""


class TestAttachment:
    def test_hint_attaches_to_following_barrier(self, analyze):
        a = analyze(SRC)
        hints = extract_hints(SRC, "test.c")
        attached = attach_hints(a.sites, hints)
        (barrier_id,) = attached
        assert "w" in barrier_id

    def test_distant_comment_not_attached(self, analyze):
        src = SRC.replace(
            "\t/* Paired with smp_rmb() in r(). */\n\tsmp_wmb();",
            "\t/* Paired with smp_rmb() in r(). */\n"
            "\tcpu_relax();\n\tcpu_relax();\n\tcpu_relax();\n"
            "\tcpu_relax();\n\tsmp_wmb();",
        )
        a = analyze(src)
        attached = attach_hints(a.sites, extract_hints(src, "test.c"))
        assert attached == {}


class TestVerification:
    def test_correct_pairing_confirmed(self, analyze):
        a = analyze(SRC)
        result = a.pair()
        verification = verify_pairings(
            result.pairings, a.sites, extract_hints(SRC, "test.c")
        )
        assert len(verification.confirmed) == 1
        assert verification.contradicted == []
        assert verification.agreement == 1.0

    def test_wrong_function_hint_contradicted(self, analyze):
        src = SRC.replace("in r()", "in some_other_reader()")
        a = analyze(src)
        result = a.pair()
        verification = verify_pairings(
            result.pairings, a.sites, extract_hints(src, "test.c")
        )
        assert len(verification.contradicted) == 1

    def test_wrong_primitive_hint_contradicted(self, analyze):
        src = SRC.replace("smp_rmb() in r()", "smp_load_acquire() in r()")
        a = analyze(src)
        verification = verify_pairings(
            a.pair().pairings, a.sites, extract_hints(src, "test.c")
        )
        assert len(verification.contradicted) == 1

    def test_coverage_counts(self, analyze):
        a = analyze(SRC)
        verification = verify_pairings(
            a.pair().pairings, a.sites, extract_hints(SRC, "test.c")
        )
        assert verification.total_barriers == 2
        assert verification.commented_barriers == 1
        assert verification.comment_coverage == 0.5

    def test_hint_on_unpaired_barrier_unmatched(self, analyze):
        src = """
struct s { int a; int b; };
void lonely(struct s *p)
{
\tp->a = 1;
\t/* paired with smp_rmb() in ghost_reader() */
\tsmp_wmb();
\tp->b = 1;
}
"""
        a = analyze(src)
        verification = verify_pairings(
            a.pair().pairings, a.sites, extract_hints(src, "test.c")
        )
        assert len(verification.unmatched_hints) == 1


class TestCorpusIntegration:
    def test_corpus_comment_coverage_below_20_percent(self):
        from repro.core.engine import OFenceEngine
        from repro.corpus import CorpusSpec, generate_corpus

        corpus = generate_corpus(CorpusSpec.small(), seed=3)
        result = OFenceEngine(corpus.source).analyze()
        verification = verify_result(result, corpus.source)
        assert verification.comment_coverage < 0.20
        assert verification.contradicted == []
        # With comments injected only on correct pairs, agreement is 1.
        assert verification.agreement == 1.0
