"""Unit tests for pairing data model edge cases and engine options."""

from repro.analysis.barrier_scan import BarrierScanner
from repro.cparse.parser import parse_source
from repro.pairing.algorithm import PairingEngine
from repro.pairing.model import PairingResult


def sites_of(src, filename="t.c"):
    unit = parse_source(src, filename)
    return BarrierScanner(unit, filename=filename).scan()


class TestEmptyInputs:
    def test_no_sites(self):
        result = PairingEngine([]).pair()
        assert result.pairings == []
        assert result.unpaired == []
        assert result.implicit_ipc == []

    def test_single_site(self):
        sites = sites_of(
            "struct s { int a; int b; };\n"
            "void f(struct s *p) { p->a = 1; smp_wmb(); p->b = 1; }"
        )
        result = PairingEngine(sites).pair()
        assert result.pairings == []
        assert len(result.unpaired) == 1

    def test_read_barriers_never_initiate(self):
        # Two read barriers sharing ordered objects: no write barrier,
        # no pairing (Algorithm 1 starts from write barriers).
        src = """
        struct s { int a; int b; };
        void r1(struct s *p) { g(p->a); smp_rmb(); g(p->b); }
        void r2(struct s *p) { g(p->a); smp_rmb(); g(p->b); }
        """
        result = PairingEngine(sites_of(src)).pair()
        assert result.pairings == []


class TestUnresolvedInclusion:
    SRC = """
    void w(void *p) { p->data = 1; smp_wmb(); p->flag = 1; }
    void r(void *p) { g(p->flag); smp_rmb(); g(p->data); }
    """

    def test_default_excludes_unresolved(self):
        result = PairingEngine(sites_of(self.SRC)).pair()
        assert result.pairings == []

    def test_opt_in_includes_unresolved(self):
        result = PairingEngine(
            sites_of(self.SRC), include_unresolved=True
        ).pair()
        assert len(result.pairings) == 1


class TestSameFunctionOption:
    SRC = """
    struct s { int a; int b; };
    void f(struct s *p) {
        p->a = 1;
        smp_wmb();
        p->b = 1;
        g(p->a);
        smp_rmb();
        g(p->b);
    }
    """

    def test_same_function_pairing_opt_in(self):
        default = PairingEngine(sites_of(self.SRC)).pair()
        assert default.pairings == []
        allowed = PairingEngine(
            sites_of(self.SRC), allow_same_function=True
        ).pair()
        assert len(allowed.pairings) == 1


class TestPairingProperties:
    SRC = """
    struct s { int flag; int data; };
    void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
    void r(struct s *p) {
        if (!p->flag) return;
        smp_rmb();
        g(p->data);
    }
    """

    def test_functions_deduplicated(self):
        result = PairingEngine(sites_of(self.SRC)).pair()
        (pairing,) = result.pairings
        assert len(pairing.functions) == len(set(pairing.functions))

    def test_writer_is_first_barrier(self):
        result = PairingEngine(sites_of(self.SRC)).pair()
        (pairing,) = result.pairings
        assert pairing.writer.is_write_barrier
        assert pairing.primary_match.is_read_barrier

    def test_paired_barrier_ids(self):
        result = PairingEngine(sites_of(self.SRC)).pair()
        assert len(result.paired_barriers) == 2

    def test_parent_unset_on_top_level_pairings(self):
        result = PairingEngine(sites_of(self.SRC)).pair()
        assert all(p.parent is None for p in result.pairings)


class TestCrossFileIdentity:
    def test_same_function_names_in_different_files_pair(self):
        # Static functions reuse names across files; barrier ids must
        # stay distinct.
        src = """
        struct s { int flag; int data; };
        static void helper(struct s *p) {
            p->data = 1; smp_wmb(); p->flag = 1;
        }
        """
        reader = """
        struct s { int flag; int data; };
        static void helper(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        sites = sites_of(src, "a.c") + sites_of(reader, "b.c")
        result = PairingEngine(sites).pair()
        assert len(result.pairings) == 1
        ids = {b.barrier_id for b in result.pairings[0].barriers}
        assert len(ids) == 2
