"""Tests for the mutation-sensitivity harness."""

import pytest

import repro.api as ofence
from repro.corpus.mutations import (
    BASE_SCENARIO,
    MUTATIONS,
    Mutation,
    MutationError,
    Reaction,
    apply_mutation,
    classify_reaction,
    run_mutation_harness,
)


class TestBaseScenario:
    def test_base_is_clean(self):
        analysis = ofence.analyze_source(BASE_SCENARIO, annotate=False)
        assert analysis.is_clean
        assert analysis.pairings

    def test_base_forms_a_broadcast_pairing(self):
        analysis = ofence.analyze_source(BASE_SCENARIO, annotate=False)
        (pairing,) = analysis.pairings
        assert pairing.is_multi
        assert len(pairing.barriers) == 3


class TestMutationOperators:
    def test_all_mutations_change_the_source(self):
        for mutation in MUTATIONS:
            assert mutation.apply(BASE_SCENARIO) != BASE_SCENARIO, \
                mutation.name

    def test_mutated_sources_still_parse(self):
        from repro.cparse.parser import parse_source

        for mutation in MUTATIONS:
            parse_source(mutation.apply(BASE_SCENARIO), "m.c")

    def test_mutation_names_unique(self):
        names = [m.name for m in MUTATIONS]
        assert len(names) == len(set(names))

    def test_missing_anchor_raises(self):
        broken = Mutation(
            name="x", description="x",
            apply=lambda s: (_ for _ in ()).throw(AssertionError("gone")),
            expected=Reaction.SILENT,
        )
        with pytest.raises(AssertionError):
            broken.apply(BASE_SCENARIO)


class TestApplyMutation:
    """File-boundary edge cases surfaced by the fuzzer."""

    def test_missing_anchor_raises_mutation_error(self):
        # benign-extra-reader is append-style: it has no anchor and
        # legitimately applies to any source, so it is exempt here.
        for mutation in MUTATIONS:
            if mutation.name == "benign-extra-reader":
                continue
            with pytest.raises(MutationError):
                apply_mutation("int unrelated;\n", mutation)

    def test_crlf_input_normalized_before_anchoring(self):
        # Every operator anchors on \n-separated statements; CRLF input
        # used to miss every anchor and fall through to a bare assert.
        crlf = BASE_SCENARIO.replace("\n", "\r\n")
        for mutation in MUTATIONS:
            mutated = apply_mutation(crlf, mutation)
            assert "\r" not in mutated, mutation.name

    def test_result_always_has_trailing_newline(self):
        # The append-style operator on a clipped file produced output
        # whose last line ran into nothing; the parser choked on it.
        clipped = BASE_SCENARIO.rstrip("\n")
        for mutation in MUTATIONS:
            mutated = apply_mutation(clipped, mutation)
            assert mutated.endswith("\n"), mutation.name

    def test_mutated_boundary_sources_still_parse(self):
        from repro.cparse.parser import parse_source

        clipped = BASE_SCENARIO.rstrip("\n")
        for mutation in MUTATIONS:
            parse_source(apply_mutation(clipped, mutation), "m.c")

    def test_noop_mutation_raises(self):
        noop = Mutation(name="noop", description="x",
                        apply=lambda s: s, expected=Reaction.SILENT)
        with pytest.raises(MutationError):
            apply_mutation(BASE_SCENARIO, noop)

    def test_applicable(self):
        for mutation in MUTATIONS:
            assert mutation.applicable(BASE_SCENARIO), mutation.name
            if mutation.name != "benign-extra-reader":  # append-style
                assert not mutation.applicable("int unrelated;\n"), \
                    mutation.name


class TestHarness:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_mutation_harness()

    def test_every_mutation_reacts_as_expected(self, outcomes):
        unexpected = [
            f"{o.mutation.name}: expected {o.mutation.expected.value}, "
            f"got {o.reaction.value}"
            for o in outcomes if not o.as_expected
        ]
        assert not unexpected, unexpected

    def test_no_harmful_mutation_is_silent(self, outcomes):
        for outcome in outcomes:
            if outcome.mutation.expected is not Reaction.SILENT:
                assert outcome.reaction is not Reaction.SILENT, \
                    outcome.mutation.name

    def test_controls_stay_silent(self, outcomes):
        controls = [
            o for o in outcomes
            if o.mutation.expected is Reaction.SILENT
        ]
        assert controls
        assert all(o.reaction is Reaction.SILENT for o in controls)

    def test_detail_recorded_for_findings(self, outcomes):
        for outcome in outcomes:
            if outcome.reaction is Reaction.FINDING:
                assert outcome.detail


class TestClassifyReaction:
    def test_pairing_lost_classification(self):
        # In a non-redundant pair, renaming the reader's struct type
        # dissolves the pairing with no finding and no advisory.
        single = """
struct sbox { int ready; int data; };
void put(struct sbox *m) { m->data = 1; smp_wmb(); m->ready = 1; }
int get(struct sbox *m) {
\tif (!m->ready)
\t\treturn 0;
\tsmp_rmb();
\tconsume(m->data);
\treturn 1;
}
"""
        mutated = single.replace("int get(struct sbox *m)",
                                 "int get(struct obox *m)")
        reaction, detail = classify_reaction(mutated, baseline_pairings=1)
        assert reaction is Reaction.PAIRING_LOST
        assert "->" in detail

    def test_writers_still_pair_with_each_other(self):
        # In the redundant base scenario, renaming the reader's struct
        # leaves the two writers pairing with each other — they do run
        # concurrently, so this is correct, not a lost pairing.
        mutated = BASE_SCENARIO.replace(
            "int drain_mbox(struct mbox *m)",
            "int drain_mbox(struct other_box *m)",
        )
        analysis = ofence.analyze_source(mutated, annotate=False)
        assert len(analysis.pairings) == 1
        functions = {fn for _, fn in analysis.pairings[0].functions}
        assert functions == {"fill_mbox", "refill_mbox"}


class TestBroadcastDecomposition:
    """The runner slices broadcast multi pairings for the checkers."""

    def test_buggy_reader_in_broadcast_detected(self):
        mutated = BASE_SCENARIO.replace(
            "\tif (!m->ready)\n\t\treturn 0;\n\tsmp_rmb();",
            "\tsmp_rmb();\n\tif (!m->ready)\n\t\treturn 0;",
        )
        analysis = ofence.analyze_source(mutated, annotate=False)
        (finding,) = analysis.findings
        assert finding.kind.value == "misplaced-memory-access"
        assert finding.pairing.parent is not None

    def test_duplicate_findings_deduped(self):
        # Two writers x one buggy reader: the same misplaced read is
        # reachable through both slices but reported once.
        mutated = BASE_SCENARIO.replace(
            "\tif (!m->ready)\n\t\treturn 0;\n\tsmp_rmb();",
            "\tsmp_rmb();\n\tif (!m->ready)\n\t\treturn 0;",
        )
        analysis = ofence.analyze_source(mutated, annotate=False)
        assert len(analysis.findings) == 1

    def test_seqcount_pairings_not_decomposed(self, analyze):
        src = """
        struct cnt { unsigned seq; long bcnt; long pcnt; };
        void wr(struct cnt *s) {
            s->seq++;
            smp_wmb();
            s->bcnt += 1;
            s->pcnt += 1;
            smp_wmb();
            s->seq++;
        }
        long rd(struct cnt *s) {
            unsigned v;
            long b;
            long p;
            do {
                v = s->seq;
                smp_rmb();
                b = s->bcnt;
                p = s->pcnt;
                smp_rmb();
            } while (v != s->seq);
            return b + p;
        }
        """
        report = analyze(src).check()
        assert report.ordering_findings == []
