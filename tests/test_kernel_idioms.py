"""Tests for additional kernel idioms the frontend must digest."""

from repro.analysis.accesses import ObjectKey
from repro.cparse import astnodes as ast
from repro.cparse.parser import parse_source
from repro.cparse.typesys import Scope, TypeInferencer, TypeRegistry


class TestContainerOf:
    SRC = """
    struct inner { int val; };
    struct outer { struct inner member; int flags; };
    void f(struct inner *p) {
        container_of(p, struct outer, member)->flags;
    }
    """

    def test_parses(self):
        unit = parse_source(self.SRC, "c.c")
        (stmt,) = unit.functions[0].body.stmts
        assert isinstance(stmt.expr, ast.Member)
        assert stmt.expr.fieldname == "flags"

    def test_type_resolved_through_container_of(self):
        unit = parse_source(self.SRC, "c.c")
        registry = TypeRegistry()
        registry.add_unit(unit)
        fn = unit.functions[0]
        scope = Scope(registry)
        for param in fn.params:
            scope.declare_param(param)
        infer = TypeInferencer(registry, scope)
        member = fn.body.stmts[0].expr
        assert infer.struct_of_member(member) == "outer"

    def test_access_key_resolved_in_analysis(self, analyze):
        src = """
        struct inner { int val; };
        struct outer { struct inner member; int flags; int ready; };
        void w(struct inner *p) {
            container_of(p, struct outer, member)->flags = 1;
            smp_wmb();
            container_of(p, struct outer, member)->ready = 1;
        }
        """
        site = analyze(src).site("w")
        keys = {u.key for u in site.uses}
        assert ObjectKey("outer", "flags") in keys
        assert ObjectKey("outer", "ready") in keys

    def test_container_of_pairing_end_to_end(self, analyze):
        src = """
        struct inner { int val; };
        struct outer { struct inner member; int flags; int ready; };
        void w(struct inner *p) {
            container_of(p, struct outer, member)->flags = 1;
            smp_wmb();
            container_of(p, struct outer, member)->ready = 1;
        }
        int r(struct outer *o) {
            if (!o->ready)
                return 0;
            smp_rmb();
            g(o->flags);
            return 1;
        }
        """
        result = analyze(src).pair()
        assert len(result.pairings) == 1


class TestLikelyUnlikely:
    def test_accesses_inside_likely_extracted(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        int r(struct s *p) {
            if (unlikely(!p->flag))
                return 0;
            smp_rmb();
            g(p->data);
            return 1;
        }
        """
        result = analyze(src).pair()
        assert len(result.pairings) == 1

    def test_no_findings_on_correct_likely_code(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        int r(struct s *p) {
            if (likely(p->flag)) {
                smp_rmb();
                g(p->data);
            }
            return 0;
        }
        """
        report = analyze(src).check()
        assert report.ordering_findings == []


class TestMiscIdioms:
    def test_do_while_zero_macro_shape(self):
        unit = parse_source(
            "void f(int a) { do { g(a); } while (0); }", "m.c"
        )
        (loop,) = unit.functions[0].body.stmts
        assert isinstance(loop, ast.DoWhile)

    def test_goto_error_unwinding_chain(self, analyze):
        src = """
        struct s { int flag; int data; };
        int r(struct s *p) {
            if (!p->flag)
                goto out_unlock;
            smp_rmb();
            g(p->data);
            return 1;
        out_unlock:
            unlock();
            return 0;
        }
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        """
        result = analyze(src).pair()
        assert len(result.pairings) == 1

    def test_array_of_structs_field_access(self, analyze):
        src = """
        struct slot { int busy; int data; };
        struct ring { struct slot slots[16]; };
        void w(struct ring *r, int i) {
            r->slots[i].data = 1;
            smp_wmb();
            r->slots[i].busy = 1;
        }
        int rd(struct ring *r, int i) {
            if (!r->slots[i].busy)
                return 0;
            smp_rmb();
            g(r->slots[i].data);
            return 1;
        }
        """
        result = analyze(src).pair()
        (pairing,) = result.pairings
        assert ObjectKey("slot", "busy") in set(pairing.common_objects)

    def test_ternary_in_barrier_function(self, analyze):
        src = """
        struct s { int flag; int data; };
        void w(struct s *p, int c) {
            p->data = c ? 1 : 2;
            smp_wmb();
            p->flag = 1;
        }
        int r(struct s *p) {
            if (!p->flag) return 0;
            smp_rmb();
            return p->data;
        }
        """
        result = analyze(src).pair()
        assert len(result.pairings) == 1
