"""Tests for the multiprocessing scan path."""

import pytest

from repro.core.engine import AnalysisOptions, KernelSource, OFenceEngine
from repro.corpus import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec.small(), seed=31)


class TestParallelScan:
    def test_results_identical_to_serial(self, corpus):
        serial = OFenceEngine(corpus.source).analyze()
        parallel = OFenceEngine(
            corpus.source, AnalysisOptions(workers=2)
        ).analyze()
        assert len(parallel.pairing.pairings) == \
            len(serial.pairing.pairings)
        assert parallel.report.table3_breakdown() == \
            serial.report.table3_breakdown()
        assert len(parallel.report.unneeded_findings) == \
            len(serial.report.unneeded_findings)
        assert parallel.files_failed == serial.files_failed
        assert parallel.total_barriers == serial.total_barriers

    def test_parse_errors_surface_from_workers(self):
        source = KernelSource(files={
            "ok.c": "struct s { int a; int b; };\n"
                    "void f(struct s *p) { p->a = 1; smp_wmb(); "
                    "p->b = 1; }\n",
            "bad.c": "void broken( { smp_wmb();",
        })
        result = OFenceEngine(
            source, AnalysisOptions(workers=2)
        ).analyze()
        assert result.files_failed == ["bad.c"]
        assert result.total_barriers == 1

    def test_incremental_after_parallel_run(self, corpus):
        engine = OFenceEngine(
            corpus.source, AnalysisOptions(workers=2)
        )
        first = engine.analyze()
        path = corpus.source.files_with_barriers()[0]
        second = engine.reanalyze_file(path)
        assert len(second.pairing.pairings) == \
            len(first.pairing.pairings)

    def test_cfg_lookup_works_with_worker_artifacts(self, corpus):
        # Patches need CFGs from the pickled scanners: every ordering
        # finding must still be patchable.
        result = OFenceEngine(
            corpus.source, AnalysisOptions(workers=2)
        ).analyze()
        ordering_patches = [
            p for p in result.patches
            if p.finding.kind.value in (
                "misplaced-memory-access", "repeated-read"
            )
        ]
        assert ordering_patches
        assert all(p.applied for p in ordering_patches)
