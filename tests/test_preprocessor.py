"""Unit tests for the lightweight preprocessor."""

import pytest

from repro.cparse.lexer import TokenKind
from repro.cparse.preprocessor import Preprocessor, PreprocessorError


def expand(text, defines=None, resolver=None):
    pp = Preprocessor(defines or {}, resolver)
    return [t.value for t in pp.preprocess(text) if t.kind is not TokenKind.EOF]


class TestObjectMacros:
    def test_simple_define(self):
        assert expand("#define N 4\nint a = N;") == \
            ["int", "a", "=", "4", ";"]

    def test_predefines(self):
        assert expand("int a = CONFIG_X;", {"CONFIG_X": "7"}) == \
            ["int", "a", "=", "7", ";"]

    def test_undef(self):
        out = expand("#define N 4\n#undef N\nint a = N;")
        assert out == ["int", "a", "=", "N", ";"]

    def test_redefinition_takes_latest(self):
        out = expand("#define N 1\n#define N 2\nint a = N;")
        assert out[-2] == "2"

    def test_macro_expanding_to_nothing(self):
        assert expand("#define EMPTY\nint EMPTY a;") == ["int", "a", ";"]

    def test_nested_object_macros(self):
        out = expand("#define A B\n#define B 9\nint x = A;")
        assert out[-2] == "9"

    def test_self_referential_macro_does_not_loop(self):
        out = expand("#define X X\nint a = X;")
        assert out[-2] == "X"

    def test_mutually_recursive_macros_do_not_loop(self):
        out = expand("#define A B\n#define B A\nint x = A;")
        assert out[-2] in ("A", "B")


class TestFunctionMacros:
    def test_simple_function_macro(self):
        out = expand("#define ADD(x, y) ((x) + (y))\nint a = ADD(1, 2);")
        assert "".join(out) == "inta=((1)+(2));"

    def test_macro_args_with_commas_in_parens(self):
        out = expand("#define ID(x) x\nint a = ID(f(1, 2));")
        assert "".join(out) == "inta=f(1,2);"

    def test_function_macro_without_parens_not_expanded(self):
        out = expand("#define F(x) x\nint a = F;")
        assert out == ["int", "a", "=", "F", ";"]

    def test_zero_argument_macro(self):
        out = expand("#define NOP() do_nothing()\nNOP();")
        assert out[:4] == ["do_nothing", "(", ")", ";"]

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#define ADD(x, y) x + y\nint a = ADD(1);")

    def test_variadic_macro(self):
        out = expand(
            "#define LOG(fmt, ...) printk(fmt, __VA_ARGS__)\n"
            'LOG("x", 1, 2);'
        )
        assert "".join(out) == 'printk("x",1,2);'

    def test_unterminated_call_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#define F(x) x\nint a = F(1")

    def test_nested_macro_calls(self):
        out = expand(
            "#define TWICE(x) ((x) * 2)\nint a = TWICE(TWICE(3));"
        )
        assert "".join(out) == "inta=((((3)*2))*2);"


class TestConditionals:
    def test_ifdef_taken(self):
        out = expand("#ifdef X\nint a;\n#endif", {"X": "1"})
        assert out == ["int", "a", ";"]

    def test_ifdef_not_taken(self):
        assert expand("#ifdef X\nint a;\n#endif") == []

    def test_ifndef(self):
        assert expand("#ifndef X\nint a;\n#endif") == ["int", "a", ";"]

    def test_else_branch(self):
        out = expand("#ifdef X\nint a;\n#else\nint b;\n#endif")
        assert out == ["int", "b", ";"]

    def test_elif_chain(self):
        src = (
            "#if defined(A)\nint a;\n#elif defined(B)\nint b;\n"
            "#else\nint c;\n#endif"
        )
        assert expand(src, {"B": "1"}) == ["int", "b", ";"]
        assert expand(src, {"A": "1"}) == ["int", "a", ";"]
        assert expand(src) == ["int", "c", ";"]

    def test_elif_not_reconsidered_after_taken(self):
        src = "#if 1\nint a;\n#elif 1\nint b;\n#endif"
        assert expand(src) == ["int", "a", ";"]

    def test_nested_conditionals(self):
        src = (
            "#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#endif"
        )
        assert expand(src, {"A": "1"}) == ["int", "a", ";"]
        assert expand(src, {"A": "1", "B": "1"}) == \
            ["int", "ab", ";", "int", "a", ";"]

    def test_defines_inside_untaken_branch_ignored(self):
        src = "#ifdef X\n#define N 1\n#endif\nint a = N;"
        assert expand(src)[-2] == "N"

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#ifdef X\nint a;")

    def test_endif_without_if_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#endif")

    def test_else_without_if_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#else")


class TestIfExpressions:
    def test_numeric_condition(self):
        assert expand("#if 1\nint a;\n#endif") == ["int", "a", ";"]
        assert expand("#if 0\nint a;\n#endif") == []

    def test_comparison(self):
        assert expand("#if 3 > 2\nint a;\n#endif") == ["int", "a", ";"]

    def test_logical_operators(self):
        src = "#if defined(A) && B > 1\nint a;\n#endif"
        assert expand(src, {"A": "1", "B": "2"}) == ["int", "a", ";"]
        assert expand(src, {"A": "1", "B": "1"}) == []

    def test_defined_without_parens(self):
        assert expand("#if defined A\nint a;\n#endif", {"A": "1"}) == \
            ["int", "a", ";"]

    def test_unknown_identifier_is_zero(self):
        assert expand("#if UNKNOWN\nint a;\n#endif") == []

    def test_macro_expansion_in_condition(self):
        src = "#define V 5\n#if V >= 5\nint a;\n#endif"
        assert expand(src) == ["int", "a", ";"]

    def test_arithmetic_and_ternary(self):
        assert expand("#if (1 + 2) * 2 == 6 ? 1 : 0\nint a;\n#endif") == \
            ["int", "a", ";"]

    def test_unary_not(self):
        assert expand("#if !0\nint a;\n#endif") == ["int", "a", ";"]

    def test_division_by_zero_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#if 1 / 0\n#endif")

    def test_empty_condition_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#if\nint a;\n#endif")


class TestIncludes:
    def test_include_resolved(self):
        headers = {"types.h": "struct foo { int x; };"}
        out = expand(
            '#include "types.h"\nint a;',
            resolver=lambda name, system: headers.get(name),
        )
        assert out[:2] == ["struct", "foo"]

    def test_unresolvable_include_skipped(self):
        out = expand('#include <missing.h>\nint a;',
                     resolver=lambda name, system: None)
        assert out == ["int", "a", ";"]

    def test_include_without_resolver_skipped(self):
        assert expand('#include "x.h"\nint a;') == ["int", "a", ";"]

    def test_double_inclusion_guarded(self):
        headers = {"h.h": "int from_header;"}
        out = expand(
            '#include "h.h"\n#include "h.h"\nint a;',
            resolver=lambda name, system: headers.get(name),
        )
        assert out.count("from_header") == 1

    def test_nested_includes(self):
        headers = {"a.h": '#include "b.h"\nint a_sym;', "b.h": "int b_sym;"}
        out = expand('#include "a.h"',
                     resolver=lambda name, system: headers.get(name))
        assert out == ["int", "b_sym", ";", "int", "a_sym", ";"]

    def test_macros_from_include_visible(self):
        headers = {"m.h": "#define WIDTH 32"}
        out = expand(
            '#include "m.h"\nint a = WIDTH;',
            resolver=lambda name, system: headers.get(name),
        )
        assert out[-2] == "32"

    def test_malformed_include_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#include x.h", resolver=lambda n, s: None)


class TestMiscDirectives:
    def test_pragma_ignored(self):
        assert expand("#pragma once\nint a;") == ["int", "a", ";"]

    def test_unknown_directive_raises(self):
        with pytest.raises(PreprocessorError):
            expand("#frobnicate\nint a;")

    def test_unknown_directive_in_dead_branch_ignored(self):
        out = expand("#ifdef X\n#frobnicate\n#endif\nint a;")
        assert out == ["int", "a", ";"]
