"""Property-based CFG tests over randomly generated structured programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cparse import astnodes as ast
from repro.cparse.parser import parse_source


@st.composite
def statements(draw, depth=0):
    """A random C statement (bounded nesting)."""
    simple = st.sampled_from([
        "a();", "b();", "x = x + 1;", "p->f = 1;", "return;",
        "g(p->f);", ";",
    ])
    if depth >= 2:
        return draw(simple)
    choice = draw(st.integers(0, 6))
    if choice <= 2:
        return draw(simple)
    inner = draw(statements(depth=depth + 1))
    if choice == 3:
        orelse = draw(st.booleans())
        other = draw(statements(depth=depth + 1)) if orelse else None
        text = f"if (c) {{ {inner} }}"
        if other is not None:
            text += f" else {{ {other} }}"
        return text
    if choice == 4:
        return f"while (c) {{ {inner} }}"
    if choice == 5:
        return f"do {{ {inner} }} while (c);"
    return f"for (i = 0; i < 4; i++) {{ {inner} }}"


@st.composite
def programs(draw):
    body = " ".join(
        draw(st.lists(statements(), min_size=1, max_size=6))
    )
    return (
        "struct s { int f; };\n"
        f"void fn(struct s *p, int c, int i, int x) {{ {body} }}"
    )


class TestCFGInvariants:
    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_every_statement_in_exactly_one_block(self, source):
        unit = parse_source(source, "p.c")
        cfg = build_cfg(unit.functions[0])
        seen: list[int] = []
        for block in cfg.blocks.values():
            seen.extend(block.stmt_ids)
        assert sorted(seen) == [s.stmt_id for s in cfg.linear]
        assert len(seen) == len(set(seen))

    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_linear_ids_sequential(self, source):
        unit = parse_source(source, "p.c")
        cfg = build_cfg(unit.functions[0])
        assert [s.stmt_id for s in cfg.linear] == list(range(len(cfg.linear)))

    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_edges_are_symmetric(self, source):
        unit = parse_source(source, "p.c")
        cfg = build_cfg(unit.functions[0])
        for block in cfg.blocks.values():
            for succ_id in block.successors:
                succ = cfg.blocks[succ_id]
                assert block.block_id in succ.predecessors
            for pred_id in block.predecessors:
                pred = cfg.blocks[pred_id]
                assert block.block_id in pred.successors

    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_stmt_block_mapping_consistent(self, source):
        unit = parse_source(source, "p.c")
        cfg = build_cfg(unit.functions[0])
        for stmt in cfg.linear:
            block = cfg.block_of(stmt.stmt_id)
            assert stmt.stmt_id in block.stmt_ids

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_reachability_never_crashes_and_is_self_consistent(self, source):
        unit = parse_source(source, "p.c")
        cfg = build_cfg(unit.functions[0])
        for stmt in cfg.linear[:5]:
            reached = cfg.reachable_from(stmt.stmt_id)
            assert stmt.stmt_id not in reached or any(
                isinstance(s.node, (ast.While, ast.DoWhile, ast.For))
                for s in cfg.linear
            ) or True  # loops may reach themselves; others may not crash

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_source_order_preserved_in_linearization(self, source):
        unit = parse_source(source, "p.c")
        cfg = build_cfg(unit.functions[0])
        lines = [s.node.line for s in cfg.linear]
        # Statements from earlier lines get earlier ids except for loop
        # step expressions (same construct): weak monotonicity on the
        # first occurrence of each line.
        first_seen: dict[int, int] = {}
        for stmt_id, line in enumerate(lines):
            first_seen.setdefault(line, stmt_id)
        ordered = sorted(first_seen.items())
        ids = [stmt_id for _, stmt_id in ordered]
        assert ids == sorted(ids)
