"""Unit tests for CFG construction and the linear statement stream."""

from repro.cfg.builder import build_cfg
from repro.cfg.walk import (
    backward_window,
    forward_window,
    iter_calls,
    iter_expressions,
    iter_subexpressions,
)
from repro.cparse import astnodes as ast
from repro.cparse.parser import parse_source


def cfg_of(src, fn=None):
    unit = parse_source(src, "test.c")
    function = unit.functions[0] if fn is None else unit.function(fn)
    return build_cfg(function)


class TestLinearization:
    def test_statement_ids_are_sequential(self):
        cfg = cfg_of("void f(void) { a(); b(); c(); }")
        assert [s.stmt_id for s in cfg.linear] == [0, 1, 2]

    def test_condition_pseudo_statements(self):
        cfg = cfg_of("void f(int x) { if (x) a(); b(); }")
        kinds = [s.kind for s in cfg.linear]
        assert kinds == ["cond", "stmt", "stmt"]

    def test_source_order_preserved_across_branches(self):
        cfg = cfg_of(
            "void f(int x) { a(); if (x) { b(); } else { c(); } d(); }"
        )
        names = []
        for stmt in cfg.linear:
            for expr in iter_expressions(stmt):
                for call in iter_calls(expr):
                    names.append(call.callee_name)
        assert names == ["a", "x", "b", "c", "d"][1:] or \
            names == ["a", "b", "c", "d"]

    def test_while_condition_linearized_once(self):
        cfg = cfg_of("void f(int x) { while (x) a(); }")
        conds = [s for s in cfg.linear if s.kind == "cond"]
        assert len(conds) == 1

    def test_do_while_condition_after_body(self):
        cfg = cfg_of("void f(int x) { do a(); while (x); }")
        assert cfg.linear[0].kind == "stmt"
        assert cfg.linear[1].kind == "cond"

    def test_for_parts_linearized(self):
        cfg = cfg_of("void f(void) { for (i = 0; i < 3; i++) a(); }")
        kinds = [s.kind for s in cfg.linear]
        # init (stmt), cond, body stmt, step (stmt)
        assert kinds.count("cond") == 1
        assert len(kinds) == 4

    def test_macro_loop_head(self):
        cfg = cfg_of(
            "void f(int cpu) { for_each_cpu(cpu) { a(); } }"
        )
        assert cfg.linear[0].kind == "loop-head"

    def test_statements_after_return_still_linearized(self):
        cfg = cfg_of("void f(void) { return; a(); }")
        assert len(cfg.linear) == 2

    def test_depth_recorded(self):
        cfg = cfg_of("void f(int x) { if (x) { if (x) { a(); } } }")
        assert cfg.linear[-1].depth >= 2


class TestBlocks:
    def test_if_branches_have_distinct_blocks(self):
        cfg = cfg_of("void f(int x) { if (x) a(); else b(); c(); }")
        cond, a_stmt, b_stmt, c_stmt = cfg.linear
        assert cfg.stmt_block[a_stmt.stmt_id] != cfg.stmt_block[b_stmt.stmt_id]
        assert cfg.stmt_block[c_stmt.stmt_id] not in (
            cfg.stmt_block[a_stmt.stmt_id], cfg.stmt_block[b_stmt.stmt_id]
        )

    def test_then_and_else_reach_join(self):
        cfg = cfg_of("void f(int x) { if (x) a(); else b(); c(); }")
        cond, a_stmt, b_stmt, c_stmt = cfg.linear
        reached_a = cfg.reachable_from(a_stmt.stmt_id)
        reached_b = cfg.reachable_from(b_stmt.stmt_id)
        assert c_stmt.stmt_id in reached_a
        assert c_stmt.stmt_id in reached_b

    def test_else_not_reachable_from_then(self):
        cfg = cfg_of("void f(int x) { if (x) a(); else b(); }")
        cond, a_stmt, b_stmt = cfg.linear
        assert b_stmt.stmt_id not in cfg.reachable_from(a_stmt.stmt_id)

    def test_loop_body_reaches_itself(self):
        cfg = cfg_of("void f(int x) { while (x) a(); }")
        cond, body = cfg.linear
        assert body.stmt_id in cfg.reachable_from(body.stmt_id)

    def test_return_reaches_nothing_in_function(self):
        cfg = cfg_of("void f(void) { a(); return; b(); }")
        a_stmt, ret, b_stmt = cfg.linear
        assert b_stmt.stmt_id not in cfg.reachable_from(ret.stmt_id)

    def test_goto_reaches_label(self):
        cfg = cfg_of("void f(void) { goto out; a(); out: b(); }")
        goto_stmt = cfg.linear[0]
        label_ids = [
            s.stmt_id for s in cfg.linear
            if isinstance(s.node, ast.LabelStmt)
        ]
        reached = cfg.reachable_from(goto_stmt.stmt_id)
        assert set(label_ids) <= reached

    def test_break_exits_loop(self):
        cfg = cfg_of(
            "void f(int x) { while (x) { if (x) break; a(); } b(); }"
        )
        break_id = next(
            s.stmt_id for s in cfg.linear if isinstance(s.node, ast.Break)
        )
        b_id = cfg.linear[-1].stmt_id
        assert b_id in cfg.reachable_from(break_id)

    def test_entry_and_exit_blocks_exist(self):
        cfg = cfg_of("void f(void) { a(); }")
        assert cfg.entry_block in cfg.blocks
        assert cfg.exit_block in cfg.blocks


class TestWindows:
    SRC = """
    void f(struct s *a) {
        a->w0 = 0;
        a->w1 = 1;
        smp_wmb();
        a->r0 = 2;
        a->r1 = 3;
        a->r2 = 4;
    }
    """

    def barrier_id(self, cfg):
        for stmt in cfg.linear:
            for expr in iter_expressions(stmt):
                for call in iter_calls(expr):
                    if call.callee_name == "smp_wmb":
                        return stmt.stmt_id
        raise AssertionError

    def test_forward_window_distances(self):
        cfg = cfg_of(self.SRC)
        bid = self.barrier_id(cfg)
        items = list(forward_window(cfg, bid, limit=2))
        assert [d for _, d in items] == [1, 2]

    def test_backward_window_distances(self):
        cfg = cfg_of(self.SRC)
        bid = self.barrier_id(cfg)
        items = list(backward_window(cfg, bid, limit=10))
        assert [d for _, d in items] == [1, 2]  # bounded by function start

    def test_window_stops_at_predicate(self):
        cfg = cfg_of(self.SRC)
        bid = self.barrier_id(cfg)
        stop = lambda stmt: stmt.stmt_id == bid + 2
        items = list(forward_window(cfg, bid, limit=10, stop=stop))
        assert len(items) == 1

    def test_limit_zero_yields_nothing(self):
        cfg = cfg_of(self.SRC)
        assert list(forward_window(cfg, self.barrier_id(cfg), 0)) == []


class TestExpressionIteration:
    def test_iter_expressions_decl_initializers(self):
        cfg = cfg_of("void f(void) { int a = g(), b = h(); }")
        exprs = list(iter_expressions(cfg.linear[0]))
        assert len(exprs) == 2

    def test_iter_subexpressions_visits_all(self):
        cfg = cfg_of("void f(void) { a->x = b[i] + f(c); }")
        exprs = list(iter_expressions(cfg.linear[0]))
        subs = list(iter_subexpressions(exprs[0]))
        assert any(isinstance(s, ast.Index) for s in subs)
        assert any(isinstance(s, ast.Call) for s in subs)
        assert any(isinstance(s, ast.Member) for s in subs)

    def test_iter_calls_nested(self):
        cfg = cfg_of("void f(void) { outer(inner(1), 2); }")
        (stmt,) = cfg.linear
        calls = [
            c.callee_name
            for expr in iter_expressions(stmt)
            for c in iter_calls(expr)
        ]
        assert set(calls) == {"outer", "inner"}

    def test_return_value_iterated(self):
        cfg = cfg_of("int f(struct s *a) { return a->x; }")
        exprs = list(iter_expressions(cfg.linear[0]))
        assert len(exprs) == 1
