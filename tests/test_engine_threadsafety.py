"""Thread-safety of the engine's incremental path.

The ``repro serve`` engine pool shares one warm :class:`OFenceEngine`
between request-handler threads; ``reanalyze_file`` mutates the file
cache, the pairing index, and the candidate memo, so unsynchronized
concurrent calls corrupt state (or crash on dict-size-changed errors).
The engine-level lock must serialize whole runs: hammering
``reanalyze_file`` from 8 threads has to leave the engine in exactly
the state a serial sequence of the same edits produces.
"""

import threading

import pytest

from repro.core.engine import KernelSource, OFenceEngine
from repro.corpus import CorpusSpec, generate_corpus


def signature(result):
    return {
        "sites": [site.barrier_id for site in result.sites],
        "pairings": [p.describe() for p in result.pairing.pairings],
        "unpaired": [s.barrier_id for s in result.pairing.unpaired],
        "findings": [f.describe() for f in result.report.all_findings],
        "failed": list(result.files_failed),
    }


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec.small(), seed=91)


def _copy_source(corpus):
    return KernelSource(
        files=dict(corpus.source.files),
        headers=dict(corpus.source.headers),
        file_options=dict(corpus.source.file_options),
    )


class TestConcurrentReanalyze:
    THREADS = 8
    ROUNDS = 5

    def test_eight_threads_match_serial(self, corpus):
        engine = OFenceEngine(_copy_source(corpus))
        engine.analyze()
        analyzed = engine.selected_files()[0]
        assert analyzed, "corpus must have analyzable files"

        edits: dict[str, str] = {}
        for i in range(self.THREADS):
            path = analyzed[i % len(analyzed)]
            if path in edits:
                continue
            text = corpus.source.files[path]
            if i % 2 == 0 and "smp_wmb();" in text:
                edits[path] = text.replace("smp_wmb();", "cpu_relax();")
            else:
                edits[path] = text + f"\n/* edited by thread set {i} */\n"

        errors: list[BaseException] = []
        barrier = threading.Barrier(self.THREADS)

        def hammer(thread_id: int) -> None:
            path = analyzed[thread_id % len(analyzed)]
            new_text = edits[path]
            try:
                barrier.wait(timeout=30)
                for _ in range(self.ROUNDS):
                    result = engine.reanalyze_file(path, new_text)
                    # Every run returns a structurally sound result.
                    assert result.files_analyzed >= 0
                    assert isinstance(result.sites, list)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "threads hung"
        assert not errors, errors

        # Findings parity: the hammered engine's state must equal a
        # fresh serial analysis of the final tree.
        final = engine.analyze()
        fresh_source = _copy_source(corpus)
        fresh_source.files.update(edits)
        fresh = OFenceEngine(fresh_source).analyze()
        assert signature(final) == signature(fresh)

    def test_concurrent_full_analyze_is_serialized(self, corpus):
        engine = OFenceEngine(_copy_source(corpus))
        results: list = []
        errors: list[BaseException] = []

        def run():
            try:
                results.append(engine.analyze())
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        first = signature(results[0])
        assert all(signature(r) == first for r in results[1:])
