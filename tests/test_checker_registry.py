"""Checker registry tests: metadata consistency, the acquire-release
checker (registered, never special-cased), cross-tier dispatch parity
for random checker subsets, and the cluster node tag on shard checker
failures.
"""

import random

import pytest

from tests.cluster_harness import ClusterHarness

from repro.checkers import registry
from repro.checkers.model import DeviationKind, FixAction
from repro.checkers.runner import ALL_CHECKS, CheckerSuite
from repro.core.engine import (
    AnalysisOptions,
    KernelSource,
    OFenceEngine,
    run_in_mode,
)
from repro.fuzz.differential import check_differential
from repro.fuzz.generate import generate_case

#: Publish-before-init: payload written after its smp_store_release.
BUGGY_ACQREL = """\
struct pub { int payload; int ready; };

void w(struct pub *p)
{
\tsmp_store_release(&p->ready, 1);
\tp->payload = 1;
}

int r(struct pub *p)
{
\tif (!smp_load_acquire(&p->ready))
\t\treturn 0;
\tconsume(p->payload);
\treturn 1;
}
"""

CORRECT_ACQREL = """\
struct pub { int payload; int ready; };

void w(struct pub *p)
{
\tp->payload = 1;
\tsmp_store_release(&p->ready, 1);
}

int r(struct pub *p)
{
\tif (!smp_load_acquire(&p->ready))
\t\treturn 0;
\tconsume(p->payload);
\treturn 1;
}
"""

#: One instance of every bug family plus correct background — enough
#: pairings that every dispatch tier actually shards.
_PROPERTY_PATTERNS = [
    "misplaced_pair", "reread_cross_pair", "wrong_type_group",
    "seqcount_bug_group", "unneeded_wakeup", "acqrel_publish_pair",
    "correct_pair", "correct_pair_acqrel", "solitary_pattern",
]


def _analyze(text: str, **options):
    source = KernelSource(files={"a.c": text})
    return OFenceEngine(source, AnalysisOptions(**options)).analyze()


class TestRegistryConsistency:
    def test_all_checks_derive_from_registry(self):
        assert set(ALL_CHECKS) == set(registry.all_names())
        assert "acquire-release" in ALL_CHECKS

    def test_run_order_honours_after_constraints(self):
        specs = registry.ordered_specs()
        position = {spec.name: i for i, spec in enumerate(specs)}
        for spec in specs:
            for earlier in spec.after:
                assert position[earlier] < position[spec.name]

    def test_shardable_specs_are_ordering_bucket(self):
        for spec in registry.shardable_specs():
            assert spec.bucket == registry.ORDERING
        names = [spec.name for spec in registry.shardable_specs()]
        assert "acquire-release" in names

    def test_kind_ownership(self):
        assert registry.checker_for_kind(
            DeviationKind.PUBLISH_BEFORE_INIT
        ) == "acquire-release"
        assert registry.checker_for_kind(
            DeviationKind.REPEATED_READ
        ) == "reread"

    def test_validate_checks_lists_valid_names_sorted(self):
        with pytest.raises(ValueError) as excinfo:
            registry.validate_checks({"misplaced", "nope"})
        message = str(excinfo.value)
        assert "nope" in message
        assert ", ".join(sorted(registry.all_names())) in message

    def test_duplicate_registration_rejected(self):
        spec = registry.get("misplaced")
        with pytest.raises(registry.RegistrationError):
            registry.register(spec)

    def test_table3_buckets_derive_from_kinds(self):
        buckets = registry.table3_buckets()
        assert buckets == tuple(sorted(buckets))
        assert "Misplaced memory access" in buckets

    def test_suite_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown checks"):
            CheckerSuite(checks={"bogus"})


class TestAcquireReleaseChecker:
    def test_flags_publish_before_init(self):
        result = _analyze(BUGGY_ACQREL)
        findings = [
            f for f in result.report.ordering_findings
            if f.kind is DeviationKind.PUBLISH_BEFORE_INIT
        ]
        assert len(findings) == 1
        finding = findings[0]
        assert finding.function == "w"
        assert finding.object_key.field == "payload"
        assert finding.fix_action is FixAction.MOVE_WRITE

    def test_patch_hoists_the_write_before_the_release(self):
        result = _analyze(BUGGY_ACQREL)
        patches = [
            p for p in result.patches
            if p.finding.kind is DeviationKind.PUBLISH_BEFORE_INIT
        ]
        assert len(patches) == 1
        diff = patches[0].render()
        assert "+\tp->payload = 1;" in diff
        assert "-\tp->payload = 1;" in diff

    def test_correct_publication_is_clean(self):
        result = _analyze(CORRECT_ACQREL)
        assert result.report.ordering_findings == []

    def test_claims_suppress_misplaced_on_the_same_object(self):
        # The flagged payload write is claimed, so the misplaced checker
        # must not also propose moving the reader's payload access.
        result = _analyze(BUGGY_ACQREL)
        misplaced = [
            f for f in result.report.ordering_findings
            if f.kind is DeviationKind.MISPLACED_ACCESS
            and f.object_key is not None
            and f.object_key.field == "payload"
        ]
        assert misplaced == []

    def test_disabling_the_checker_drops_only_its_kind(self):
        enabled = frozenset(registry.all_names()) - {"acquire-release"}
        result = _analyze(BUGGY_ACQREL, checks=enabled)
        kinds = {f.kind for f in result.report.all_findings}
        assert DeviationKind.PUBLISH_BEFORE_INIT not in kinds


class TestSubsetDispatchParity:
    """Satellite: random checker subsets are mode-independent."""

    @pytest.mark.parametrize("seed", [11, 29])
    def test_serial_executor_cluster_byte_identical(self, seed):
        rng = random.Random(seed)
        names = sorted(registry.all_names())
        subset = frozenset(rng.sample(names, rng.randint(1, len(names))))
        case = generate_case(
            seed, allow_mutants=False, force_patterns=_PROPERTY_PATTERNS
        )
        options = AnalysisOptions(checks=subset, exec_min_batch=1)
        problems = check_differential(
            lambda: case.source,
            modes=("serial", "executor", "cluster"),
            options=options,
        )
        assert problems == [], f"subset {sorted(subset)}: {problems}"

    def test_disabled_checker_removes_exactly_its_kinds(self):
        case = generate_case(
            7, allow_mutants=False, force_patterns=_PROPERTY_PATTERNS
        )
        declared_by = {}
        for name in registry.all_names():
            for kind in registry.get(name).kinds:
                declared_by.setdefault(kind, set()).add(name)
        for name in sorted(registry.all_names()):
            enabled = frozenset(registry.all_names()) - {name}
            result = run_in_mode(
                "serial", case.source, AnalysisOptions(checks=enabled)
            )
            kinds = {f.kind for f in result.report.all_findings}
            # Kinds only this checker declares must vanish; everything
            # still emitted must come from an enabled spec.
            for kind, owners in declared_by.items():
                if owners == {name}:
                    assert kind not in kinds, (name, kind)
            for kind in kinds:
                assert declared_by[kind] & enabled, (name, kind)


class TestClusterCheckerFailureNodeTag:
    """Satellite: a checkerfail in a cluster shard keeps its node."""

    def test_shard_checkerfail_surfaces_with_node_label(self, monkeypatch):
        from repro.checkers.seqcount import SeqcountChecker

        def explode(self, pairings):
            raise RuntimeError("synthetic shard crash")

        monkeypatch.setattr(SeqcountChecker, "check", explode)
        source = KernelSource(files={"a.c": BUGGY_ACQREL})
        with ClusterHarness(nodes=2) as harness:
            result = harness.coordinator.analyze(source)
        failures = [
            f for f in result.report.checker_failures
            if f.checker == "seqcount"
        ]
        assert len(failures) == 1
        failure = failures[0]
        assert "synthetic shard crash" in failure.error
        assert failure.node in harness.urls
        # The label is context, not outcome: describe() must stay
        # mode-independent so run signatures keep matching serial.
        assert failure.node not in failure.describe()

    def test_serial_failure_has_no_node(self, monkeypatch):
        from repro.checkers.seqcount import SeqcountChecker

        def explode(self, pairings):
            raise RuntimeError("synthetic serial crash")

        monkeypatch.setattr(SeqcountChecker, "check", explode)
        result = _analyze(BUGGY_ACQREL)
        failures = [
            f for f in result.report.checker_failures
            if f.checker == "seqcount"
        ]
        assert len(failures) == 1
        assert failures[0].node == ""
