"""Unit tests for Algorithm 1 (barrier pairing)."""

from repro.analysis.accesses import ObjectKey
from repro.analysis.barrier_scan import BarrierScanner
from repro.cparse.parser import parse_source
from repro.pairing.algorithm import PairingEngine


def pair_sources(*named_sources):
    """Scan several (filename, source) pairs and pair globally."""
    sites = []
    for filename, source in named_sources:
        unit = parse_source(source, filename)
        sites.extend(BarrierScanner(unit, filename=filename).scan())
    return PairingEngine(sites).pair(), sites


class TestBasicPairing:
    def test_listing1_pairs(self, listing1, analyze):
        result = analyze(listing1).pair()
        (pairing,) = result.pairings
        functions = {fn for _, fn in pairing.functions}
        assert functions == {"reader", "writer"}
        assert set(pairing.common_objects) == {
            ObjectKey("my_struct", "init"), ObjectKey("my_struct", "y"),
        }

    def test_pairing_weight_is_distance_product(self, listing1, analyze):
        result = analyze(listing1).pair()
        (pairing,) = result.pairings
        # writer distances 1 and 1; reader: init at 2, y at 1 -> 1*1*2*1.
        assert pairing.weight == 2.0

    def test_single_common_object_does_not_pair(self, analyze):
        src = """
        struct s { int only; };
        void w(struct s *p) { p->only = 1; smp_wmb(); p->other_local = 2; }
        void r(struct s *p) { smp_rmb(); g(p->only); }
        """
        result = analyze(src).pair()
        assert result.pairings == []

    def test_unordered_objects_do_not_pair(self, analyze):
        # Both objects on the same side of both barriers: no ordering.
        src = """
        struct s { int a; int b; };
        void w(struct s *p) { p->a = 1; p->b = 2; smp_wmb(); }
        void r(struct s *p) { g(p->a); h(p->b); smp_rmb(); }
        """
        result = analyze(src).pair()
        assert result.pairings == []

    def test_one_side_ordering_suffices(self, analyze):
        # The writer orders the objects even though the reader does not.
        src = """
        struct s { int a; int b; };
        void w(struct s *p) { p->a = 1; smp_wmb(); p->b = 2; }
        void r(struct s *p) { g(p->a); h(p->b); smp_rmb(); }
        """
        result = analyze(src).pair()
        assert len(result.pairings) == 1

    def test_cross_file_pairing(self):
        header = "struct shared { int flag; int data; };"
        writer = header + """
        void w(struct shared *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        """
        reader = header + """
        void r(struct shared *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        result, _ = pair_sources(("w.c", writer), ("r.c", reader))
        (pairing,) = result.pairings
        files = {f for f, _ in pairing.functions}
        assert files == {"w.c", "r.c"}

    def test_unresolved_keys_excluded_by_default(self, analyze):
        src = """
        void w(void *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void r(void *p) { g(p->flag); smp_rmb(); g(p->data); }
        """
        result = analyze(src).pair()
        assert result.pairings == []

    def test_same_function_barriers_do_not_pair_with_each_other(self, analyze):
        src = """
        struct s { int a; int b; };
        void f(struct s *p) {
            p->a = 1;
            smp_wmb();
            p->b = 1;
            g(p->a);
            smp_rmb();
            g(p->b);
        }
        """
        result = analyze(src).pair()
        assert result.pairings == []


class TestWeightSelection:
    def test_closest_candidate_wins(self):
        header = "struct s { int flag; int data; };"
        writer = header + """
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        """
        near = header + """
        void near_reader(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        far = header + """
        void far_reader(struct s *p) {
            if (!p->flag) return;
            pad1(); pad2(); pad3(); pad4();
            smp_rmb();
            pad5(); pad6(); pad7();
            g(p->data);
        }
        """
        result, _ = pair_sources(("w.c", writer), ("n.c", near), ("f.c", far))
        primary = result.pairings[0]
        assert primary.primary_match.function == "near_reader"

    def test_conflicting_pairings_keep_lowest_weight(self):
        # Two writers compete for one reader; the closer writer wins the
        # direct pairing (the other joins via the multi extension if its
        # window contains the common objects).
        header = "struct s { int flag; int data; };"
        w1 = header + """
        void tight_writer(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        """
        w2 = header + """
        void loose_writer(struct s *p) {
            p->data = 1;
            pad1(); pad2(); pad3();
            smp_wmb();
            p->flag = 1;
        }
        """
        reader = header + """
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        result, _ = pair_sources(("w1.c", w1), ("w2.c", w2), ("r.c", reader))
        assert result.pairings[0].writer.function == "tight_writer"


class TestMultiBarrier:
    SEQ = """
    struct cnt { unsigned seq; long bcnt; long pcnt; };
    void writer(struct cnt *s) {
        s->seq++;
        smp_wmb();
        s->bcnt += 1;
        s->pcnt += 1;
        smp_wmb();
        s->seq++;
    }
    long reader(struct cnt *s) {
        unsigned v;
        long b;
        long p;
        do {
            v = s->seq;
            smp_rmb();
            b = s->bcnt;
            p = s->pcnt;
            smp_rmb();
        } while (v != s->seq);
        return b + p;
    }
    """

    def test_seqcount_merges_into_one_pairing(self, analyze):
        result = analyze(self.SEQ).pair()
        (pairing,) = result.pairings
        assert pairing.is_multi
        assert len(pairing.barriers) == 4

    def test_extension_requires_all_common_objects(self):
        header = "struct s { int flag; int data; };"
        pair_src = header + """
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        partial = header + """
        void partial(struct s *p) { g(p->flag); smp_rmb(); }
        """
        result, _ = pair_sources(("a.c", pair_src), ("b.c", partial))
        (pairing,) = result.pairings
        assert not pairing.is_multi  # partial lacks 'data'

    def test_third_function_with_all_objects_joins(self):
        header = "struct s { int flag; int data; };"
        pair_src = header + """
        void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        extra = header + """
        void r2(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            h(p->data);
        }
        """
        result, _ = pair_sources(("a.c", pair_src), ("b.c", extra))
        (pairing,) = result.pairings
        assert len(pairing.barriers) == 3


class TestImplicitIPC:
    def test_wakeup_closer_than_objects_defers_pairing(self):
        header = "struct s { int flag; int data; };"
        # The writer's wake-up call sits closer to the barrier than any
        # shared object, so the IPC is the implicit read barrier (§4.2).
        writer = header + """
        void w(struct s *p) {
            p->data = 1;
            p->flag = 1;
            pad();
            smp_wmb();
            wake_up(q);
            g(p->flag);
            h(p->data);
        }
        """
        reader = header + """
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        result, _ = pair_sources(("w.c", writer), ("r.c", reader))
        assert [s.function for s in result.implicit_ipc] == ["w"]

    def test_wakeup_without_candidate_is_implicit_ipc(self, analyze):
        src = """
        struct s { int a; };
        void w(struct s *p) { p->a = 1; smp_wmb(); wake_up(q); }
        """
        result = analyze(src).pair()
        assert len(result.implicit_ipc) == 1
        assert result.unpaired == []

    def test_objects_closer_than_wakeup_still_pair(self):
        header = "struct s { int flag; int data; };"
        writer = header + """
        void w(struct s *p) {
            p->data = 1;
            smp_wmb();
            p->flag = 1;
            wake_up(q);
        }
        """
        reader = header + """
        void r(struct s *p) {
            if (!p->flag) return;
            smp_rmb();
            g(p->data);
        }
        """
        result, _ = pair_sources(("w.c", writer), ("r.c", reader))
        assert len(result.pairings) == 1
        assert result.implicit_ipc == []


class TestResultAccounting:
    def test_coverage(self, listing1, analyze):
        result = analyze(listing1).pair()
        assert result.coverage(2) == 1.0
        assert result.coverage(4) == 0.5
        assert result.coverage(0) == 0.0

    def test_unpaired_barriers_listed(self, analyze):
        src = """
        struct s { int a; int b; };
        void lonely(struct s *p) { p->a = 1; smp_wmb(); p->b = 2; }
        """
        result = analyze(src).pair()
        assert [s.function for s in result.unpaired] == ["lonely"]

    def test_describe_mentions_objects(self, listing1, analyze):
        result = analyze(listing1).pair()
        text = result.pairings[0].describe()
        assert "my_struct" in text and "weight" in text
