"""Failure-injection tests: the pipeline must degrade gracefully.

A static analyzer over a living kernel tree constantly meets code it
cannot handle; Smatch (and OFence) skip what they cannot parse and keep
going.  These tests inject malformed inputs at every pipeline stage.
"""

import pytest

from repro.core.engine import AnalysisOptions, KernelSource, OFenceEngine
from repro.cparse.lexer import LexError, tokenize
from repro.cparse.parser import ParseError, parse_source
from repro.cparse.preprocessor import Preprocessor, PreprocessorError

GOOD_PAIR = """
struct s { int flag; int data; };
void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }
void r(struct s *p) {
    if (!p->flag) return;
    smp_rmb();
    g(p->data);
}
"""


class TestLexerFailures:
    def test_unexpected_byte(self):
        with pytest.raises(LexError):
            tokenize("int a = `backtick`;")

    def test_error_message_has_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("a\nb @", filename="x.c")
        assert "x.c:2" in str(exc.value)

    def test_lone_hash_midline_rejected_cleanly(self):
        # '#' outside line-start is not a directive and not valid C.
        with pytest.raises(LexError):
            tokenize("int a # b;")


class TestPreprocessorFailures:
    def test_recursive_include_bounded(self):
        headers = {"a.h": '#include "a.h"\nint x;'}
        pp = Preprocessor(
            include_resolver=lambda name, system: headers.get(name)
        )
        # The inclusion guard breaks the cycle instead of recursing.
        tokens = pp.preprocess('#include "a.h"')
        assert any(t.value == "x" for t in tokens)

    def test_mutually_recursive_includes_bounded(self):
        headers = {
            "a.h": '#include "b.h"\nint a_sym;',
            "b.h": '#include "a.h"\nint b_sym;',
        }
        pp = Preprocessor(
            include_resolver=lambda name, system: headers.get(name)
        )
        tokens = pp.preprocess('#include "a.h"')
        values = [t.value for t in tokens]
        assert "a_sym" in values and "b_sym" in values

    def test_garbage_condition(self):
        with pytest.raises(PreprocessorError):
            Preprocessor().preprocess("#if ((\nint a;\n#endif")


class TestParserFailures:
    @pytest.mark.parametrize("source", [
        "void f( {",
        "struct s { int a;",
        "void f(void) { return",
        "void f(void) { if }",
        "int 5x;",
        "void f(void) { a-> ; }",
    ])
    def test_malformed_inputs_raise_parse_error(self, source):
        with pytest.raises((ParseError, LexError)):
            parse_source(source, "bad.c")

    def test_deeply_nested_expression_parses(self):
        expr = "(" * 50 + "x" + ")" * 50
        unit = parse_source(f"void f(void) {{ a = {expr}; }}", "deep.c")
        assert unit.functions


class TestEngineResilience:
    def test_one_bad_file_does_not_poison_the_run(self, engine_for):
        # The broken files must contain barrier calls so the regex
        # pre-filter selects them for parsing at all.
        engine = engine_for({
            "good.c": GOOD_PAIR,
            "bad1.c": "void broken( { smp_wmb();",
            "bad2.c": "struct s { smp_rmb();",
        })
        result = engine.analyze()
        assert sorted(result.files_failed) == ["bad1.c", "bad2.c"]
        assert len(result.pairing.pairings) == 1

    def test_empty_file(self, engine_for):
        result = engine_for({"empty.c": ""}).analyze()
        assert result.total_barriers == 0
        assert result.files_with_barriers == 0

    def test_file_with_only_comments(self, engine_for):
        result = engine_for({"c.c": "/* smp_wmb(); */\n"}).analyze()
        # The regex pre-filter may select it, but parsing finds no sites.
        assert result.total_barriers == 0

    def test_barrier_in_dead_preprocessor_branch(self, engine_for):
        src = (
            "struct s { int a; };\n"
            "#ifdef CONFIG_NEVER\n"
            "void f(struct s *p) { smp_wmb(); }\n"
            "#endif\n"
            "void g(struct s *p) { p->a = 1; }\n"
        )
        result = engine_for({"dead.c": src}).analyze()
        assert result.total_barriers == 0

    def test_reanalyze_file_becoming_unparsable(self, engine_for):
        engine = engine_for({"a.c": GOOD_PAIR})
        first = engine.analyze()
        assert len(first.pairing.pairings) == 1
        second = engine.reanalyze_file("a.c", "void broken( { smp_wmb();")
        assert "a.c" in second.files_failed
        assert second.pairing.pairings == []

    def test_reanalyze_file_losing_its_barriers(self, engine_for):
        engine = engine_for({"a.c": GOOD_PAIR})
        engine.analyze()
        second = engine.reanalyze_file(
            "a.c", "struct s { int a; };\nvoid f(struct s *p) { p->a = 1; }\n"
        )
        assert second.total_barriers == 0

    def test_function_with_empty_body(self, engine_for):
        result = engine_for({"e.c": "void f(void) { }"}).analyze()
        assert result.total_barriers == 0

    def test_barrier_as_first_and_last_statement(self, engine_for):
        src = "void f(void) { smp_mb(); }"
        result = engine_for({"b.c": src}).analyze()
        assert result.total_barriers == 1
        assert result.pairing.pairings == []

    def test_huge_function_bounded_by_windows(self, engine_for):
        body = "\n".join(f"\tcpu_relax();" for _ in range(500))
        src = (
            "struct s { int a; int b; };\n"
            "void f(struct s *p)\n{\n"
            f"\tp->a = 1;\n{body}\n\tsmp_wmb();\n\tp->b = 1;\n}}\n"
        )
        result = engine_for({"huge.c": src}).analyze()
        (site,) = result.sites
        # 'a' is 501 statements away: outside every window.
        fields = {u.key.field for u in site.uses}
        assert fields == {"b"}


class TestPatchRobustness:
    def test_patch_generation_survives_missing_cfg(self):
        from repro.checkers.model import DeviationKind, Finding, FixAction
        from repro.patching.generate import PatchGenerator

        finding = Finding(
            kind=DeviationKind.MISPLACED_ACCESS,
            filename="x.c", function="f", line=1,
            explanation="synthetic", fix_action=FixAction.MOVE_READ,
        )
        generator = PatchGenerator({"x.c": "void f(void) { }\n"})
        patch = generator.generate(finding)
        assert patch is not None
        assert not patch.applied
