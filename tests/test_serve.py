"""Contract and unit tests for the ``repro.serve`` subsystem.

The HTTP tests run a real in-process :class:`AnalysisServer` on an
ephemeral port and drive it through :class:`ServeClient` — the same
wire path production traffic takes.
"""

import threading
import time

import pytest

from repro.analysis.barrier_scan import ScanLimits
from repro.core.engine import AnalysisOptions, KernelSource
from repro.serve import (
    AnalysisServer,
    AnalysisService,
    ClientError,
    EnginePool,
    Job,
    JobQueue,
    LatencyWindow,
    MetricsRegistry,
    QueueFull,
    ServeClient,
    decode_options,
    decode_source,
    encode_options,
    encode_source,
    tree_key,
)

WRITER = (
    "struct s { int flag; int data; };\n"
    "void w(struct s *p) { p->data = 1; smp_wmb(); p->flag = 1; }\n"
)
READER = (
    "struct s { int flag; int data; };\n"
    "void r(struct s *p) {\n"
    "\tif (!p->flag) return;\n"
    "\tsmp_rmb();\n"
    "\tg(p->data);\n"
    "}\n"
)


#: READER with the flag check moved before the barrier: a known finding.
BUGGY_READER = READER.replace(
    "\tif (!p->flag) return;\n\tsmp_rmb();",
    "\tsmp_rmb();\n\tif (!p->flag) return;",
)


def small_source() -> KernelSource:
    return KernelSource(files={"w.c": WRITER, "r.c": READER})


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------


class TestWire:
    def test_source_round_trip(self):
        source = KernelSource(
            files={"a.c": "int x;"},
            headers={"h.h": "int h;"},
            file_options={"a.c": "CONFIG_NET"},
        )
        decoded = decode_source(encode_source(source))
        assert decoded.files == source.files
        assert decoded.headers == source.headers
        assert decoded.file_options == source.file_options

    def test_options_round_trip(self):
        options = AnalysisOptions(
            limits=ScanLimits(write_window=3, read_window=17),
            annotate=False,
            checks=frozenset({"missing_barrier"}),
        )
        decoded = decode_options(encode_options(options),
                                 AnalysisOptions())
        assert decoded.limits.write_window == 3
        assert decoded.limits.read_window == 17
        assert decoded.annotate is False
        assert decoded.checks == frozenset({"missing_barrier"})

    def test_none_options_copy_base(self):
        base = AnalysisOptions(workers=4)
        decoded = decode_options(None, base)
        assert decoded is not base
        assert decoded.workers == 4

    def test_tree_key_stable_and_content_sensitive(self):
        options = AnalysisOptions()
        k1 = tree_key(small_source(), options)
        k2 = tree_key(small_source(), options)
        assert k1 == k2
        edited = small_source()
        edited.files["w.c"] += "\n"
        assert tree_key(edited, options) != k1
        wider = AnalysisOptions(limits=ScanLimits(write_window=9))
        assert tree_key(small_source(), wider) != k1


# ---------------------------------------------------------------------------
# Engine pool
# ---------------------------------------------------------------------------


class TestEnginePool:
    def test_hit_miss_and_warm_reuse(self):
        pool = EnginePool(capacity=2)
        with pool.acquire("k1", source=small_source()) as engine:
            first = engine.analyze()
        with pool.acquire("k1", source=small_source()) as engine:
            warm = engine.analyze()
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert warm.profile.counters.get("scan.scanned", 0) == 0
        assert len(warm.sites) == len(first.sites)

    def test_lru_eviction(self):
        pool = EnginePool(capacity=2)
        for key in ("a", "b", "c"):
            with pool.acquire(key, source=small_source()):
                pass
        assert pool.stats.evictions == 1
        assert pool.get("a") is None  # oldest evicted
        assert pool.get("c") is not None

    def test_get_refreshes_lru_order(self):
        pool = EnginePool(capacity=2)
        for key in ("a", "b"):
            with pool.acquire(key, source=small_source()):
                pass
        assert pool.get("a") is not None  # refresh "a"
        with pool.acquire("c", source=small_source()):
            pass
        assert pool.get("b") is None  # "b" was least recently used
        assert pool.get("a") is not None

    def test_analyze_hit_converges_reanalyze_drift(self):
        """A warm engine mutated by deltas must not serve the old tree.

        ``reanalyze_file`` rewrites the pooled engine's source in place
        while the entry stays keyed by the original content hash; a
        subsequent analyze hit for that key has to get results for the
        tree it submitted, not the drifted one.
        """
        from repro.core.engine import AnalysisOptions
        from repro.fuzz.differential import run_signature

        pool = EnginePool(capacity=2)
        options = AnalysisOptions()
        key = tree_key(small_source(), options)
        with pool.acquire(key, source=small_source(),
                          options=options) as engine:
            baseline = engine.analyze()
            drifted = engine.reanalyze_file("r.c", BUGGY_READER)
            engine.reanalyze_file("extra.c", WRITER)  # added file
        assert run_signature(drifted) != run_signature(baseline)
        with pool.acquire(key, source=small_source(),
                          options=options) as engine:
            assert engine.source.files == small_source().files
            again = engine.analyze()
        assert run_signature(again) == run_signature(baseline)
        assert pool.stats.reconverged == 1
        # A clean hit does not count as a convergence.
        with pool.acquire(key, source=small_source(), options=options):
            pass
        assert pool.stats.reconverged == 1

    def test_same_key_serialized_different_keys_concurrent(self):
        pool = EnginePool(capacity=4)
        order: list[str] = []
        inside = threading.Event()
        release = threading.Event()

        def hold(key):
            with pool.acquire(key, source=small_source()):
                order.append(f"enter-{key}")
                if key == "x":
                    inside.set()
                    release.wait(timeout=10)
                order.append(f"exit-{key}")

        t1 = threading.Thread(target=hold, args=("x",))
        t1.start()
        assert inside.wait(timeout=10)
        # A different key does not block on x's engine lock.
        t2 = threading.Thread(target=hold, args=("y",))
        t2.start()
        t2.join(timeout=10)
        assert not t2.is_alive()
        assert "exit-y" in order and "exit-x" not in order
        release.set()
        t1.join(timeout=10)
        assert "exit-x" in order


# ---------------------------------------------------------------------------
# Job queue
# ---------------------------------------------------------------------------


def _job(kind="reanalyze", key="t1"):
    return Job(kind=kind, tree_key=key,
               deltas=[("f.c", "int x;")] if kind == "reanalyze" else [])


class TestJobQueue:
    def test_fifo_order(self):
        queue = JobQueue(capacity=8)
        jobs = [_job(key=f"k{i}") for i in range(3)]
        for job in jobs:
            queue.submit(job)
        pulled = [queue.next_batch()[0] for _ in range(3)]
        assert [j.job_id for j in pulled] == [j.job_id for j in jobs]

    def test_same_tree_reanalyze_batched(self):
        queue = JobQueue(capacity=8, batch_limit=8)
        first = _job(key="same")
        middle = _job(key="other")
        also_same = _job(key="same")
        for job in (first, middle, also_same):
            queue.submit(job)
        batch = queue.next_batch()
        assert [j.tree_key for j in batch] == ["same", "same"]
        assert all(j.batch_size == 2 for j in batch)
        # The interleaved job kept its place for the next pull.
        assert queue.next_batch()[0] is middle

    def test_same_tree_barrier_stops_coalescing(self):
        """Coalescing must not pull deltas past a same-tree analyze.

        Deltas queued *behind* an analyze of the same tree would
        otherwise run before it, diverging the warm engine's state from
        submission order.  Other trees' jobs are still skipped over.
        """
        queue = JobQueue(capacity=8, batch_limit=8)
        first = _job(key="same")
        other = _job(key="other")
        barrier = _job(kind="analyze", key="same")
        later = _job(key="same")
        for job in (first, other, barrier, later):
            queue.submit(job)
        pulled = [queue.next_batch() for _ in range(4)]
        # Original order preserved past the stopped collection.
        assert [batch[0] for batch in pulled] == \
            [first, other, barrier, later]
        assert all(len(batch) == 1 for batch in pulled)

    def test_analyze_jobs_never_batch(self):
        queue = JobQueue(capacity=8)
        queue.submit(_job(kind="analyze", key="same"))
        queue.submit(_job(kind="analyze", key="same"))
        assert len(queue.next_batch()) == 1

    def test_batch_limit_caps_coalescing(self):
        queue = JobQueue(capacity=16, batch_limit=2)
        for _ in range(4):
            queue.submit(_job(key="same"))
        assert len(queue.next_batch()) == 2

    def test_full_queue_raises(self):
        queue = JobQueue(capacity=2)
        queue.submit(_job())
        queue.submit(_job())
        with pytest.raises(QueueFull) as excinfo:
            queue.submit(_job())
        assert excinfo.value.retry_after >= 1.0
        assert queue.rejected == 1

    def test_drain_waits_for_in_flight(self):
        queue = JobQueue(capacity=4)
        queue.submit(_job())
        batch = queue.next_batch()
        done = []

        def drain():
            done.append(queue.drain(timeout=10))

        thread = threading.Thread(target=drain)
        thread.start()
        time.sleep(0.05)
        assert thread.is_alive(), "drain returned with a job in flight"
        queue.done(len(batch))
        thread.join(timeout=10)
        assert done == [True]
        with pytest.raises(Exception):
            queue.submit(_job())  # draining queues refuse new work

    def test_stop_wakes_workers(self):
        queue = JobQueue(capacity=4)
        results = []

        def worker():
            results.append(queue.next_batch())

        thread = threading.Thread(target=worker)
        thread.start()
        queue.stop()
        thread.join(timeout=10)
        assert results == [None]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_latency_percentiles(self):
        window = LatencyWindow()
        for ms in range(1, 101):
            window.record(ms / 1000)
        assert window.percentile(50) == pytest.approx(0.050, abs=0.002)
        assert window.percentile(95) == pytest.approx(0.095, abs=0.002)
        assert window.percentile(99) == pytest.approx(0.099, abs=0.002)
        assert LatencyWindow().percentile(50) is None

    def test_registry_snapshot_and_prometheus(self):
        registry = MetricsRegistry()
        registry.observe_request("analyze", 0.25, 200)
        registry.observe_job("analyze", 0.2, ok=True)
        registry.increment("jobs.batched", 3)
        snap = registry.snapshot(queue={"depth": 1}, pool={"size": 2})
        assert snap["requests"]["analyze"]["count"] == 1
        assert snap["counters"]["jobs.batched"] == 3
        assert snap["queue"]["depth"] == 1
        text = registry.render_prometheus(queue={"depth": 1},
                                          pool={"size": 2})
        assert 'ofence_requests_total{endpoint="analyze"} 1' in text
        assert "ofence_queue_depth 1" in text
        assert "ofence_pool_size 2" in text
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# HTTP endpoint contracts
# ---------------------------------------------------------------------------


@pytest.fixture
def server():
    with AnalysisServer(pool_capacity=2, queue_capacity=8) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServeClient(server.url, timeout=60)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["accepting"] is True

    def test_analyze_wait_returns_result(self, client):
        response = client.analyze(small_source())
        assert response["status"] == "done"
        result = response["result"]
        assert result["total_barriers"] == 2
        assert len(result["pairings"]) == 1
        assert result["signature"]
        assert response["tree_key"]

    def test_analyze_async_then_poll(self, client):
        response = client.analyze(small_source(), wait=False)
        assert response["status"] in ("queued", "running", "done")
        final = client.job(response["job_id"], wait=True, timeout=30)
        assert final["status"] == "done"
        assert final["result"]["total_barriers"] == 2

    def test_warm_pool_reuse_and_metrics(self, client):
        first = client.analyze(small_source())
        second = client.analyze(small_source())
        assert first["tree_key"] == second["tree_key"]
        assert first["result"]["signature"] == second["result"]["signature"]
        metrics = client.metrics()
        assert metrics["pool"]["hits"] >= 1
        assert metrics["jobs"]["analyze"]["count"] == 2
        assert metrics["stage_counters"].get("scan.memory_hits", 0) >= 2

    def test_reanalyze_delta(self, client):
        submitted = client.analyze(small_source())
        key = submitted["tree_key"]
        response = client.reanalyze(key, [("r.c", BUGGY_READER)])
        assert response["status"] == "done"
        assert response["result"]["findings"]
        assert response["result"]["signature"] != \
            submitted["result"]["signature"]

    def test_analyze_after_reanalyze_serves_submitted_tree(self, client):
        """Deltas against a warm engine must not leak into later
        analyzes of the original tree (same content hash, mutated
        engine)."""
        original = client.analyze(small_source())
        client.reanalyze(original["tree_key"], [("r.c", BUGGY_READER)])
        again = client.analyze(small_source())
        assert again["tree_key"] == original["tree_key"]
        assert again["result"]["signature"] == \
            original["result"]["signature"]
        assert again["result"]["findings"] == \
            original["result"]["findings"]

    def test_reanalyze_unknown_tree_409(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.reanalyze("0" * 64, [("r.c", READER)])
        assert excinfo.value.status == 409

    def test_reanalyze_requires_deltas(self, client, server):
        submitted = client.analyze(small_source())
        with pytest.raises(ClientError) as excinfo:
            client.reanalyze(submitted["tree_key"], [])
        assert excinfo.value.status == 400

    def test_unknown_job_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_bad_json_400(self, client, server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{server.url}/v1/analyze", data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_bad_wait_timeout_400(self, client):
        submitted = client.analyze(small_source())
        with pytest.raises(ClientError) as excinfo:
            client._request(
                "GET",
                f"/v1/jobs/{submitted['job_id']}?wait=1&timeout=soon",
            )
        assert excinfo.value.status == 400
        assert "timeout" in str(excinfo.value)

    def test_metrics_record_actual_statuses(self, client):
        submitted = client.analyze(small_source())
        with pytest.raises(ClientError):
            client.job("job-999999")  # 404
        with pytest.raises(ClientError):
            client._request("GET", "/v1/nope")  # unrouted 404
        with pytest.raises(ClientError):
            client._request(
                "GET",
                f"/v1/jobs/{submitted['job_id']}?wait=1&timeout=x",
            )
        counters = client.metrics()["counters"]
        assert counters.get("http.analyze.200", 0) >= 1
        assert counters.get("http.jobs.404", 0) >= 1
        assert counters.get("http.unknown.404", 0) >= 1
        assert counters.get("http.jobs.400", 0) >= 1
        # Nothing above may be misreported as a jobs 200.
        assert counters.get("http.jobs.200", 0) == 0

    def test_metrics_json_and_prometheus(self, client):
        client.analyze(small_source())
        metrics = client.metrics()
        for section in ("uptime_seconds", "requests", "jobs", "queue",
                        "pool", "cache", "stage_seconds"):
            assert section in metrics
        text = client.metrics_text()
        assert "ofence_uptime_seconds" in text
        assert 'ofence_requests_total{endpoint="analyze"}' in text

    def test_service_parity_with_serial(self):
        from repro.core.engine import run_in_mode
        from repro.fuzz.differential import run_signature

        serial = run_in_mode("serial", small_source())
        serve = run_in_mode("serve", small_source())
        assert run_signature(serial) == run_signature(serve)


# ---------------------------------------------------------------------------
# Backpressure and graceful drain
# ---------------------------------------------------------------------------


class TestBackpressureAndDrain:
    def _blocked_server(self, queue_capacity=1):
        release = threading.Event()
        started = threading.Event()

        def block(job):
            started.set()
            release.wait(timeout=60)

        server = AnalysisServer(
            queue_capacity=queue_capacity, on_job_start=block
        ).start()
        return server, release, started

    def test_full_queue_answers_503_with_retry_after(self):
        import urllib.error
        import urllib.request

        server, release, started = self._blocked_server(queue_capacity=1)
        try:
            client = ServeClient(server.url, timeout=60)
            # First job occupies the worker; second fills the queue.
            running = client.analyze(small_source(), wait=False)
            assert started.wait(timeout=30)
            queued = client.analyze(small_source(), wait=False)
            with pytest.raises(ClientError) as excinfo:
                client.analyze(small_source(), wait=False)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            release.set()
            for job in (running, queued):
                final = client.job(job["job_id"], wait=True, timeout=60)
                assert final["status"] == "done"
        finally:
            release.set()
            server.stop()

    def test_graceful_drain_finishes_inflight_job(self):
        server, release, started = self._blocked_server(queue_capacity=4)
        client = ServeClient(server.url, timeout=60)
        submitted = client.analyze(small_source(), wait=False)
        assert started.wait(timeout=30)

        drained: list[bool] = []
        drainer = threading.Thread(
            target=lambda: drained.append(server.drain(timeout=60))
        )
        drainer.start()
        time.sleep(0.1)
        # Mid-drain: still listening, refusing new work.
        with pytest.raises(ClientError) as excinfo:
            client.analyze(small_source(), wait=False)
        assert excinfo.value.status == 503
        with pytest.raises(ClientError) as health_exc:
            client.healthz()
        assert health_exc.value.status == 503

        release.set()
        drainer.join(timeout=60)
        assert drained == [True]
        # The in-flight job finished before shutdown.
        job = server.service.job(submitted["job_id"])
        assert job.status == "done"

    def test_drain_then_submit_via_service_raises(self):
        service = AnalysisService(queue_capacity=2)
        assert service.drain(timeout=10) is True
        from repro.serve.server import ServeError

        with pytest.raises(ServeError) as excinfo:
            service.submit_analyze({"source": encode_source(small_source())})
        assert excinfo.value.status == 503


# ---------------------------------------------------------------------------
# Micro-batching through the service
# ---------------------------------------------------------------------------


class TestServiceBatching:
    def test_burst_of_deltas_is_coalesced(self):
        release = threading.Event()
        started = threading.Event()

        def gate(job):
            # Block only the first (analyze) job so deltas can pile up.
            if job.kind == "analyze" and not started.is_set():
                started.set()
                release.wait(timeout=60)

        server = AnalysisServer(queue_capacity=16, batch_limit=8,
                                on_job_start=gate).start()
        try:
            client = ServeClient(server.url, timeout=60)
            # Warm an engine first (blocked inside the worker).
            warm = client.analyze(small_source(), wait=False)
            assert started.wait(timeout=30)
            release.set()
            final = client.job(warm["job_id"], wait=True, timeout=60)
            key = final["tree_key"]

            # Pause the worker again via a second analyze of a new tree,
            # then queue several deltas for the warm tree.
            other = small_source()
            other.files["extra.c"] = WRITER.replace("struct s", "struct t")
            blocker_release = threading.Event()
            server.service._on_job_start = \
                lambda job: (job.kind == "analyze"
                             and blocker_release.wait(timeout=60))
            blocker = client.analyze(other, wait=False)
            deltas = [
                client.reanalyze(
                    key, [("r.c", READER + f"\n/* v{i} */\n")], wait=False
                )
                for i in range(3)
            ]
            blocker_release.set()
            finals = [client.job(d["job_id"], wait=True, timeout=60)
                      for d in deltas]
            assert all(f["status"] == "done" for f in finals)
            assert finals[-1]["batch_size"] >= 2, \
                "queued same-tree deltas should coalesce into one batch"
            client.job(blocker["job_id"], wait=True, timeout=60)
            metrics = client.metrics()
            assert metrics["counters"].get("jobs.batched", 0) >= 2
        finally:
            release.set()
            server.stop()


# ---------------------------------------------------------------------------
# Shared process executor
# ---------------------------------------------------------------------------


class TestServiceExecutor:
    def test_owned_executor_lifecycle_and_metrics(self):
        from repro.corpus import CorpusSpec, generate_corpus
        from repro.serve.wire import encode_source as enc

        corpus = generate_corpus(CorpusSpec.small(), seed=3)
        service = AnalysisService(
            options=AnalysisOptions(exec_min_batch=1), exec_workers=2
        )
        try:
            assert service.executor is not None
            job = service.submit_analyze(
                {"source": enc(corpus.source)}
            )
            assert job.wait(120) and job.status == "done"
            gauges = service.metrics_gauges()
            assert gauges["executor"]["tasks_completed"] > 0
            text = service.metrics.render_prometheus(**gauges)
            assert "ofence_exec_tasks_completed" in text
        finally:
            service.close()
        # The service owns the executor it created: close() closes it.
        assert service.executor.closed

    def test_attached_executor_not_closed_by_service(self):
        from repro.exec import AnalysisExecutor

        with AnalysisExecutor(workers=2) as ex:
            service = AnalysisService(
                options=AnalysisOptions(executor=ex)
            )
            assert service.executor is ex
            service.close()
            assert not ex.closed

    def test_executor_results_match_plain_service(self):
        from repro.fuzz.differential import run_signature

        plain = AnalysisService()
        pooled = AnalysisService(
            options=AnalysisOptions(exec_min_batch=1), exec_workers=2
        )
        try:
            jobs = [
                svc.submit_analyze({
                    "files": [
                        {"path": "w.c", "text": WRITER},
                        {"path": "r.c", "text": BUGGY_READER},
                    ],
                })
                for svc in (plain, pooled)
            ]
            for job in jobs:
                assert job.wait(120) and job.status == "done"
            assert run_signature(jobs[0].result) == \
                run_signature(jobs[1].result)
        finally:
            plain.close()
            pooled.close()
